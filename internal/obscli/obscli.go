// Package obscli is the one place the commands wire the observability
// stack: every cmd calls AddFlags for the shared -trace / -metrics / -http /
// -flightdir flag set, Build to materialise the enabled pieces, Attach on
// each recovery.DB it constructs, and Finish at exit. Keeping the wiring
// here means the three binaries cannot drift apart in which observability
// surface they expose.
package obscli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"smdb/internal/obs"
	"smdb/internal/obs/deps"
	"smdb/internal/recovery"
)

// Flags holds the parsed shared observability flags. Zero values mean the
// corresponding surface stays off; with every flag off Build returns a stack
// whose Attach and Finish are no-ops, so callers never branch.
type Flags struct {
	Trace     string        // -trace: Chrome trace-event JSON output path
	Metrics   bool          // -metrics: print the metrics table at exit
	HTTP      string        // -http: live introspection listen address
	HTTPHold  time.Duration // -httphold: keep serving this long after the run
	FlightDir string        // -flightdir: crash flight-recorder dump root
	FlightN   int           // -flightn: per-node event tail in each dump

	// RecoverWorkers is -recoverworkers: the restart-recovery fan-out every
	// cmd copies into recovery.Config.RecoveryWorkers (0 or 1 = sequential).
	// Not an observability surface, but shared cmd wiring all the same, and
	// keeping it here keeps the knob's spelling identical across binaries.
	RecoverWorkers int
}

// AddFlags registers the shared observability flag set on fs (the command's
// flag.CommandLine in practice) and returns the destination struct; read it
// after fs.Parse.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Trace, "trace", "", "write Chrome trace-event JSON (Perfetto-loadable) to this file")
	fs.BoolVar(&f.Metrics, "metrics", false, "print the observability metrics after the run")
	fs.StringVar(&f.HTTP, "http", "", "serve live introspection (/metrics /trace /deps /healthz /debug/pprof) on this address, e.g. 127.0.0.1:8321")
	fs.DurationVar(&f.HTTPHold, "httphold", 0, "keep the -http server alive this long after the run finishes")
	fs.StringVar(&f.FlightDir, "flightdir", "", "write crash flight-recorder dumps under this directory")
	fs.IntVar(&f.FlightN, "flightn", obs.DefaultFlightEvents, "events retained per node in each flight dump")
	fs.IntVar(&f.RecoverWorkers, "recoverworkers", 0, "parallel restart-recovery workers (0 = sequential)")
	return f
}

// Enabled reports whether any observability surface was requested.
func (f *Flags) Enabled() bool {
	return f.Trace != "" || f.Metrics || f.HTTP != "" || f.FlightDir != ""
}

// Stack is the assembled observability stack for one command run. The
// commands that sweep seeds build a fresh recovery.DB per seed; the stack's
// observer, flight recorder, and HTTP server outlive every DB, while the
// dependency tracker is per-DB and swapped in by Attach — the HTTP /deps
// endpoint always renders the current one.
type Stack struct {
	Obs    *obs.Observer
	Flight *obs.FlightRecorder
	HTTP   *obs.HTTPServer
	flags  *Flags
	cur    atomic.Pointer[deps.Tracker]
}

// WriteDOT renders the current DB's dependency graph; before the first
// Attach it renders the empty graph. Stack is the GraphWriter handed to the
// HTTP server and flight recorder, so both follow tracker swaps.
func (s *Stack) WriteDOT(w io.Writer) error { return s.cur.Load().WriteDOT(w) }

// WriteGraphJSON is the JSON twin of WriteDOT.
func (s *Stack) WriteGraphJSON(w io.Writer) error { return s.cur.Load().WriteGraphJSON(w) }

// Tracker returns the dependency tracker from the most recent Attach (nil
// before the first).
func (s *Stack) Tracker() *deps.Tracker { return s.cur.Load() }

// Build assembles the stack the flags ask for. With nothing enabled it
// returns an inert stack: Obs stays nil, so every engine-side hook keeps its
// nil-receiver fast path. Build fails only on unusable -http / -flightdir
// values, before any workload runs.
func (f *Flags) Build() (*Stack, error) {
	s := &Stack{flags: f}
	if !f.Enabled() {
		return s, nil
	}
	s.Obs = obs.New()
	if f.FlightDir != "" {
		if err := os.MkdirAll(f.FlightDir, 0o755); err != nil {
			return nil, fmt.Errorf("-flightdir: %w", err)
		}
		s.Flight = obs.NewFlightRecorder(f.FlightDir, f.FlightN)
	}
	if f.HTTP != "" {
		srv, err := obs.ServeHTTP(f.HTTP, s.Obs, s)
		if err != nil {
			return nil, fmt.Errorf("-http: %w", err)
		}
		s.HTTP = srv
		fmt.Fprintf(os.Stderr, "introspection: http://%s/ (metrics, trace, deps, healthz, pprof)\n", srv.Addr)
	}
	return s, nil
}

// Attach wires the stack into one recovery.DB: observer, a fresh dependency
// tracker (echoing edges back into the observer's event stream), and the
// flight recorder. Safe to call once per DB in a sweep; the stack's
// aggregate surfaces (HTTP, trace file) keep accumulating across them. The
// returned tracker is nil when the stack is disabled — every call site is
// nil-safe.
func (s *Stack) Attach(db *recovery.DB) *deps.Tracker {
	if s.Obs == nil {
		return nil
	}
	t := deps.New(s.Obs)
	db.AttachObserver(s.Obs)
	db.AttachDeps(t)
	s.cur.Store(t)
	if s.Flight != nil {
		db.SetFlightRecorder(s.Flight)
	}
	return t
}

// Finish emits the end-of-run surfaces: the metrics table when -metrics, the
// Chrome trace file when -trace, and an -httphold grace period before the
// introspection server shuts down. Call exactly once, after the workload.
func (s *Stack) Finish(out io.Writer) error {
	if s.Obs == nil {
		return nil
	}
	if s.flags.Metrics {
		fmt.Fprintln(out)
		if err := s.Obs.MetricsTable(out); err != nil {
			return err
		}
	}
	if s.flags.Trace != "" {
		f, err := os.Create(s.flags.Trace)
		if err != nil {
			return err
		}
		if err := s.Obs.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %s (load at ui.perfetto.dev)\n", s.flags.Trace)
	}
	if s.HTTP != nil {
		if s.flags.HTTPHold > 0 {
			fmt.Fprintf(os.Stderr, "introspection: holding http://%s/ for %s\n", s.HTTP.Addr, s.flags.HTTPHold)
			time.Sleep(s.flags.HTTPHold)
		}
		s.HTTP.Shutdown()
	}
	return nil
}

// PrintVerdicts renders the explainer verdicts accumulated by the current
// dependency tracker — the per-transaction crash-time story (crashed victim
// log coverage, survivor loss coverage, doomed unlogged dependencies). A
// disabled stack prints nothing.
func (s *Stack) PrintVerdicts(out io.Writer) {
	t := s.cur.Load()
	if t == nil {
		return
	}
	vs := t.Verdicts()
	if len(vs) == 0 {
		return
	}
	fmt.Fprintf(out, "\ndependency explainer (%d verdicts):\n", len(vs))
	for _, v := range vs {
		fmt.Fprintf(out, "  %s\n", v.Text)
		for _, e := range v.Evidence {
			fmt.Fprintf(out, "    %s\n", e)
		}
	}
}
