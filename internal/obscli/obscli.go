// Package obscli is the one place the commands wire the observability
// stack: every cmd calls AddFlags for the shared -trace / -metrics / -http /
// -flightdir / -audit flag set, Build to materialise the enabled pieces,
// Attach on each recovery.DB it constructs, and Finish at exit. Keeping the
// wiring here means the three binaries cannot drift apart in which
// observability surface they expose.
package obscli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/obs/audit"
	"smdb/internal/obs/debt"
	"smdb/internal/obs/deps"
	"smdb/internal/obs/prof"
	"smdb/internal/obs/waterfall"
	"smdb/internal/recovery"
	"smdb/internal/sched"
)

// Flags holds the parsed shared observability flags. Zero values mean the
// corresponding surface stays off; with every flag off Build returns a stack
// whose Attach and Finish are no-ops, so callers never branch.
type Flags struct {
	Trace     string        // -trace: Chrome trace-event JSON output path
	Metrics   bool          // -metrics: print the metrics table at exit
	HTTP      string        // -http: live introspection listen address
	HTTPHold  time.Duration // -httphold: keep serving this long after the run
	FlightDir string        // -flightdir: crash flight-recorder dump root
	FlightN   int           // -flightn: per-node event tail in each dump
	Audit     bool          // -audit: per-txn trails + online IFA auditor + time series
	Window    time.Duration // -window: audit time-series window width (simulated time)
	Prof      bool          // -prof: stripe-contention + worker cost-attribution profiler
	Waterfall bool          // -waterfall: per-txn latency waterfalls + tail sampler + recovery progress
	SlowK     int           // -slowk: slowest transactions retained per sampler window
	Debt      bool          // -debt: live recovery-debt tracker + MTTR accounting (/recovery/debt)

	// RecoverWorkers is -recoverworkers: the restart-recovery fan-out every
	// cmd copies into recovery.Config.RecoveryWorkers (0 or 1 = sequential).
	// Not an observability surface, but shared cmd wiring all the same, and
	// keeping it here keeps the knob's spelling identical across binaries.
	RecoverWorkers int

	// GroupForce is -groupforce: epoch/group commit log forces (commits
	// arriving within one epoch window coalesce into a single physical WAL
	// force). Copied into recovery.Config.GroupCommitForces by every cmd;
	// shared here for the same no-drift reason as RecoverWorkers.
	GroupForce bool

	// Record / Replay are the chaos schedule flags, shared here so the
	// spelling cannot drift across binaries. Record is a directory recorded
	// schedules are written under; Replay is one schedule file to re-execute
	// deterministically. Only the chaos driver honours them: the other
	// commands' drivers are seed-deterministic already and reject the flags
	// via RejectSched.
	Record string // -record: write recorded chaos schedules under this directory
	Replay string // -replay: replay a recorded chaos schedule file
}

// AddFlags registers the shared observability flag set on fs (the command's
// flag.CommandLine in practice) and returns the destination struct; read it
// after fs.Parse.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Trace, "trace", "", "write Chrome trace-event JSON (Perfetto-loadable) to this file")
	fs.BoolVar(&f.Metrics, "metrics", false, "print the observability metrics after the run")
	fs.StringVar(&f.HTTP, "http", "", "serve live introspection (/metrics /trace /deps /audit /timeseries /healthz /debug/pprof) on this address, e.g. 127.0.0.1:8321")
	fs.DurationVar(&f.HTTPHold, "httphold", 0, "keep the -http server alive this long after the run finishes (SIGINT/SIGTERM ends the hold early)")
	fs.StringVar(&f.FlightDir, "flightdir", "", "write crash flight-recorder dumps under this directory")
	fs.IntVar(&f.FlightN, "flightn", obs.DefaultFlightEvents, "events retained per node in each flight dump")
	fs.BoolVar(&f.Audit, "audit", false, "per-transaction audit trails, the online IFA auditor, and windowed time-series metrics")
	fs.DurationVar(&f.Window, "window", time.Millisecond, "audit time-series window width, in simulated time")
	fs.BoolVar(&f.Prof, "prof", false, "per-stripe lock contention and per-worker recovery cost profiling (/prof/stripes, /prof/workers, end-of-run report)")
	fs.BoolVar(&f.Waterfall, "waterfall", false, "per-transaction latency waterfalls with tail-sampled causal traces and live recovery progress (/slow, /recovery/progress)")
	fs.IntVar(&f.SlowK, "slowk", 0, "slowest transactions retained per waterfall sampler window (0 = default 8)")
	fs.BoolVar(&f.Debt, "debt", false, "live recovery-debt tracker: log debt per node, MTTR accounting, and estimated replay time (/recovery/debt)")
	fs.IntVar(&f.RecoverWorkers, "recoverworkers", 0, "parallel restart-recovery workers (0 = sequential)")
	fs.BoolVar(&f.GroupForce, "groupforce", false, "epoch/group commit log forces: commits in one epoch window share a single physical WAL force")
	fs.StringVar(&f.Record, "record", "", "record chaos schedules (one JSON per seed) under this directory")
	fs.StringVar(&f.Replay, "replay", "", "replay a recorded chaos schedule file deterministically")
	return f
}

// SchedCheck validates the record/replay flag combination and prepares the
// -record directory. Call after Parse, before any run.
func (f *Flags) SchedCheck() error {
	if f.Record != "" && f.Replay != "" {
		return fmt.Errorf("-record and -replay are mutually exclusive")
	}
	if f.Record != "" {
		if err := os.MkdirAll(f.Record, 0o755); err != nil {
			return fmt.Errorf("-record: %w", err)
		}
	}
	return nil
}

// LoadSchedule reads the -replay schedule file.
func (f *Flags) LoadSchedule() (*sched.Schedule, error) {
	sch, err := sched.ReadFile(f.Replay)
	if err != nil {
		return nil, fmt.Errorf("-replay: %w", err)
	}
	return sch, nil
}

// SaveSchedule writes a recording session's schedule as <name>.json under
// the -record directory and returns the path.
func (f *Flags) SaveSchedule(sess *sched.Session, name string) (string, error) {
	path := filepath.Join(f.Record, name+".json")
	if err := sess.Schedule().WriteFile(path); err != nil {
		return "", err
	}
	return path, nil
}

// RejectSched errors out when the chaos record/replay flags reach a command
// whose drivers are already deterministic from their seeds.
func (f *Flags) RejectSched(cmd string) error {
	if f.Record != "" || f.Replay != "" {
		return fmt.Errorf("-record/-replay drive the concurrent chaos harness; use smdb-chaos (%s runs are seed-deterministic already)", cmd)
	}
	return nil
}

// Enabled reports whether any observability surface was requested.
func (f *Flags) Enabled() bool {
	return f.Trace != "" || f.Metrics || f.HTTP != "" || f.FlightDir != "" || f.Audit || f.Prof || f.Waterfall || f.Debt
}

// Stack is the assembled observability stack for one command run. The
// commands that sweep seeds build a fresh recovery.DB per seed; the stack's
// observer, flight recorder, and HTTP server outlive every DB, while the
// dependency tracker and auditor are per-DB and swapped in by Attach — the
// HTTP /deps, /audit/*, and /timeseries endpoints always render the current
// ones.
type Stack struct {
	Obs    *obs.Observer
	Flight *obs.FlightRecorder
	HTTP   *obs.HTTPServer
	flags  *Flags
	cur    atomic.Pointer[deps.Tracker]
	aud    atomic.Pointer[audit.Auditor]
	prof   atomic.Pointer[prof.Pair]
	wf     atomic.Pointer[waterfall.Recorder]
	dbt    atomic.Pointer[debt.Tracker]

	holdStop chan struct{}
	holdOnce sync.Once
	holding  atomic.Bool
}

// WriteDOT renders the current DB's dependency graph; before the first
// Attach it renders the empty graph. Stack is the GraphWriter handed to the
// HTTP server and flight recorder, so both follow tracker swaps.
func (s *Stack) WriteDOT(w io.Writer) error { return s.cur.Load().WriteDOT(w) }

// WriteGraphJSON is the JSON twin of WriteDOT.
func (s *Stack) WriteGraphJSON(w io.Writer) error { return s.cur.Load().WriteGraphJSON(w) }

// WriteAuditTxn, WriteAuditViolations, and WriteTimeSeries make Stack the
// obs.AuditSource handed to the HTTP server, delegating to the auditor from
// the most recent Attach (the audit.Auditor writers are nil-receiver safe,
// reporting {"enabled": false} before the first Attach or with -audit off).
func (s *Stack) WriteAuditTxn(w io.Writer, id string) error { return s.aud.Load().WriteAuditTxn(w, id) }

// WriteAuditViolations renders the current auditor's typed violations.
func (s *Stack) WriteAuditViolations(w io.Writer) error { return s.aud.Load().WriteAuditViolations(w) }

// WriteTimeSeries renders the current auditor's windowed metrics.
func (s *Stack) WriteTimeSeries(w io.Writer) error { return s.aud.Load().WriteTimeSeries(w) }

// WriteProfStripes, WriteProfWorkers, WriteProfJSON, and WriteProfProm make
// Stack the obs.ProfSource handed to the HTTP server and flight recorder,
// delegating to the profiler pair from the most recent Attach (the prof.Pair
// writers are nil-receiver safe, reporting {"enabled": false} before the
// first Attach or with -prof off).
func (s *Stack) WriteProfStripes(w io.Writer) error { return s.prof.Load().WriteProfStripes(w) }

// WriteProfWorkers renders the current profiler's worker attribution.
func (s *Stack) WriteProfWorkers(w io.Writer) error { return s.prof.Load().WriteProfWorkers(w) }

// WriteProfJSON renders the current profiler's combined document.
func (s *Stack) WriteProfJSON(w io.Writer) error { return s.prof.Load().WriteProfJSON(w) }

// WriteProfProm renders the current profiler's Prometheus lines.
func (s *Stack) WriteProfProm(w io.Writer) error { return s.prof.Load().WriteProfProm(w) }

// WriteSlowJSON and friends make Stack the obs.WaterfallSource handed to the
// HTTP server and flight recorder, delegating to the waterfall recorder from
// the most recent Attach (the waterfall writers are nil-receiver safe,
// reporting {"enabled": false} before the first Attach or with -waterfall
// off).
func (s *Stack) WriteSlowJSON(w io.Writer, max int) error { return s.wf.Load().WriteSlowJSON(w, max) }

// WriteTxnJSON renders one sampled transaction's waterfall.
func (s *Stack) WriteTxnJSON(w io.Writer, txn int64) error { return s.wf.Load().WriteTxnJSON(w, txn) }

// WriteWaterfallChrome renders the sampled waterfalls as Chrome trace JSON.
func (s *Stack) WriteWaterfallChrome(w io.Writer) error { return s.wf.Load().WriteWaterfallChrome(w) }

// WriteWaterfallProm renders the waterfall Prometheus counters.
func (s *Stack) WriteWaterfallProm(w io.Writer) error { return s.wf.Load().WriteWaterfallProm(w) }

// WriteWaterfallJSON renders the flight-recorder waterfall document.
func (s *Stack) WriteWaterfallJSON(w io.Writer) error { return s.wf.Load().WriteWaterfallJSON(w) }

// WriteRecoveryProgress renders the live recovery-progress document.
func (s *Stack) WriteRecoveryProgress(w io.Writer) error {
	return s.wf.Load().WriteRecoveryProgress(w)
}

// WriteDebtJSON and WriteDebtProm make Stack the obs.DebtSource handed to
// the HTTP server and flight recorder, delegating to the debt tracker from
// the most recent Attach (the debt writers are nil-receiver safe, reporting
// {"enabled": false} before the first Attach or with -debt off).
func (s *Stack) WriteDebtJSON(w io.Writer) error { return s.dbt.Load().WriteDebtJSON(w) }

// WriteDebtProm renders the current debt tracker's Prometheus lines.
func (s *Stack) WriteDebtProm(w io.Writer) error { return s.dbt.Load().WriteDebtProm(w) }

// Debt returns the recovery-debt tracker from the most recent Attach (nil
// before the first, or with -debt off).
func (s *Stack) Debt() *debt.Tracker { return s.dbt.Load() }

// Waterfall returns the waterfall recorder from the most recent Attach (nil
// before the first, or with -waterfall off).
func (s *Stack) Waterfall() *waterfall.Recorder { return s.wf.Load() }

// Prof returns the profiler pair from the most recent Attach (nil before the
// first, or with -prof off).
func (s *Stack) Prof() *prof.Pair { return s.prof.Load() }

// Tracker returns the dependency tracker from the most recent Attach (nil
// before the first).
func (s *Stack) Tracker() *deps.Tracker { return s.cur.Load() }

// Auditor returns the online auditor from the most recent Attach (nil
// before the first, or with -audit off).
func (s *Stack) Auditor() *audit.Auditor { return s.aud.Load() }

// Build assembles the stack the flags ask for. With nothing enabled it
// returns an inert stack: Obs stays nil, so every engine-side hook keeps its
// nil-receiver fast path. Build fails only on unusable -http / -flightdir
// values, before any workload runs.
func (f *Flags) Build() (*Stack, error) {
	s := &Stack{flags: f, holdStop: make(chan struct{})}
	if !f.Enabled() {
		return s, nil
	}
	s.Obs = obs.New()
	if f.FlightDir != "" {
		if err := os.MkdirAll(f.FlightDir, 0o755); err != nil {
			return nil, fmt.Errorf("-flightdir: %w", err)
		}
		s.Flight = obs.NewFlightRecorder(f.FlightDir, f.FlightN)
	}
	if f.HTTP != "" {
		srv, err := obs.ServeHTTP(f.HTTP, s.Obs, s, s, s, s, s)
		if err != nil {
			return nil, fmt.Errorf("-http: %w", err)
		}
		s.HTTP = srv
		fmt.Fprintf(os.Stderr, "introspection: http://%s/ (metrics, trace, deps, audit, timeseries, prof, healthz, pprof)\n", srv.Addr)
	}
	return s, nil
}

// Attach wires the stack into one recovery.DB: observer, a fresh dependency
// tracker (echoing edges back into the observer's event stream), with -audit
// a fresh online auditor whose LBM policy matches the DB's protocol and
// coherency, and the flight recorder. Safe to call once per DB in a sweep;
// the stack's aggregate surfaces (HTTP, trace file) keep accumulating across
// them. The returned tracker is nil when the stack is disabled — every call
// site is nil-safe.
func (s *Stack) Attach(db *recovery.DB) *deps.Tracker {
	if s.Obs == nil {
		return nil
	}
	t := deps.New(s.Obs)
	db.AttachObserver(s.Obs)
	db.AttachDeps(t)
	s.cur.Store(t)
	if s.flags.Audit {
		a := audit.New(audit.Config{
			// Stable protocols promise stable coverage at exposure — but
			// only write-invalidate coherency funnels every exposure
			// through the trigger/eager force paths; under write-broadcast
			// the sharers see stores directly and the honest invariant is
			// volatile coverage.
			Stable: db.Cfg.Protocol.StableLBM() &&
				db.M.Config().Coherency == machine.WriteInvalidate,
			WindowNS: s.flags.Window.Nanoseconds(),
		})
		db.AttachAudit(a)
		s.aud.Store(a)
	}
	if s.flags.Prof {
		// A fresh pair per DB, like the tracker and auditor; attach before
		// the flight recorder so prof.json joins its dumps.
		p := prof.NewPair(machine.StripeCount)
		db.AttachProf(p)
		s.prof.Store(p)
	}
	if s.flags.Waterfall {
		// A fresh recorder per DB, like the profiler; attach before the
		// flight recorder so waterfall.json joins its dumps.
		w := waterfall.New(waterfall.Config{
			TopK:  s.flags.SlowK,
			Nodes: db.M.Nodes(),
		})
		db.AttachWaterfall(w)
		s.wf.Store(w)
	}
	if s.flags.Debt {
		// A fresh tracker per DB, like the profiler; attach before the
		// flight recorder so debt.json joins its dumps.
		d := debt.New(debt.Config{
			Nodes:        db.M.Nodes(),
			LinesPerPage: db.Cfg.LinesPerPage,
		})
		db.AttachDebt(d)
		s.dbt.Store(d)
		if s.Flight != nil {
			// Capture the raw per-node WAL devices in every dump so
			// smdb-waldump can run offline forensics on the exact log state
			// at crash time.
			for _, l := range db.Logs {
				dev := l.Device()
				s.Flight.SetAux(fmt.Sprintf("wal-node%d.wal", l.Node()), func(w io.Writer) error {
					_, err := w.Write(dev.Contents())
					return err
				})
			}
		}
	}
	if s.Flight != nil {
		db.SetFlightRecorder(s.Flight)
	}
	return t
}

// StopHold ends an in-progress -httphold grace period early (used by hosts
// embedding the stack and by tests; SIGINT/SIGTERM have the same effect).
// Safe to call at any time, at most once effective.
func (s *Stack) StopHold() {
	s.holdOnce.Do(func() {
		if s.holdStop != nil {
			close(s.holdStop)
		}
	})
}

// Holding reports whether Finish is currently inside the -httphold grace
// period (it flips true only after the signal handler is armed).
func (s *Stack) Holding() bool { return s.holding.Load() }

// holdWait blocks for the -httphold duration, ending early on SIGINT or
// SIGTERM (so a held introspection server shuts down cleanly on ctrl-c
// instead of dying mid-request) or on StopHold.
func (s *Stack) holdWait(d time.Duration) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	timer := time.NewTimer(d)
	defer timer.Stop()
	s.holding.Store(true)
	defer s.holding.Store(false)
	select {
	case <-timer.C:
	case <-sig:
		fmt.Fprintln(os.Stderr, "introspection: interrupted, shutting down")
	case <-s.holdStop:
	}
}

// Finish emits the end-of-run surfaces: the metrics table when -metrics, the
// audit summary when -audit, the Chrome trace file when -trace, and an
// -httphold grace period — interruptible by SIGINT/SIGTERM — before the
// introspection server shuts down. Call exactly once, after the workload.
func (s *Stack) Finish(out io.Writer) error {
	if s.Obs == nil {
		return nil
	}
	if s.flags.Metrics {
		fmt.Fprintln(out)
		if err := s.Obs.MetricsTable(out); err != nil {
			return err
		}
	}
	if a := s.aud.Load(); a != nil {
		sum := a.Summary()
		fmt.Fprintf(out, "audit: %d violation(s), %d anomaly(ies) over %d window(s), %d trail(s) completed (%d live)\n",
			sum.Violations, sum.Anomalies, sum.Windows, sum.Completed, sum.Active)
		for k, n := range sum.ViolationsByKind {
			fmt.Fprintf(out, "  %s: %d\n", k, n)
		}
	}
	if p := s.prof.Load(); p != nil {
		fmt.Fprintln(out)
		fmt.Fprint(out, p.Report(5))
	}
	if w := s.wf.Load(); w != nil {
		fmt.Fprintln(out, w.Summary())
	}
	if d := s.dbt.Load(); d != nil {
		fmt.Fprintln(out, d.Summary())
	}
	if s.flags.Trace != "" {
		f, err := os.Create(s.flags.Trace)
		if err != nil {
			return err
		}
		if err := s.Obs.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %s (load at ui.perfetto.dev)\n", s.flags.Trace)
	}
	if s.HTTP != nil {
		if s.flags.HTTPHold > 0 {
			fmt.Fprintf(os.Stderr, "introspection: holding http://%s/ for %s (ctrl-c to stop)\n", s.HTTP.Addr, s.flags.HTTPHold)
			s.holdWait(s.flags.HTTPHold)
		}
		s.HTTP.Shutdown()
	}
	return nil
}

// PrintVerdicts renders the explainer verdicts accumulated by the current
// dependency tracker — the per-transaction crash-time story (crashed victim
// log coverage, survivor loss coverage, doomed unlogged dependencies). A
// disabled stack prints nothing.
func (s *Stack) PrintVerdicts(out io.Writer) {
	t := s.cur.Load()
	if t == nil {
		return
	}
	vs := t.Verdicts()
	if len(vs) == 0 {
		return
	}
	fmt.Fprintf(out, "\ndependency explainer (%d verdicts):\n", len(vs))
	for _, v := range vs {
		fmt.Fprintf(out, "  %s\n", v.Text)
		for _, e := range v.Evidence {
			fmt.Fprintf(out, "    %s\n", e)
		}
	}
}
