package obscli

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/workload"
)

func parseFlags(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFlagSetRegistersSharedNames(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	AddFlags(fs)
	for _, name := range []string{"trace", "metrics", "http", "httphold", "flightdir", "flightn", "audit", "window", "recoverworkers"} {
		if fs.Lookup(name) == nil {
			t.Errorf("shared flag -%s not registered", name)
		}
	}
}

func TestDisabledStackIsInert(t *testing.T) {
	f := parseFlags(t)
	if f.Enabled() {
		t.Fatal("empty flags report enabled")
	}
	s, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.Obs != nil || s.Flight != nil || s.HTTP != nil {
		t.Errorf("disabled stack built surfaces: %+v", s)
	}
	db := newDB(t, recovery.StableEager)
	if tr := s.Attach(db); tr != nil {
		t.Errorf("disabled Attach returned a tracker")
	}
	if db.Observer() != nil || db.Deps() != nil {
		t.Error("disabled Attach wired the DB")
	}
	if err := s.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func newDB(t *testing.T, proto recovery.Protocol) *recovery.DB {
	t.Helper()
	db, err := recovery.New(recovery.Config{
		Machine:        machine.Config{Nodes: 4, Lines: 4096},
		Protocol:       proto,
		LinesPerPage:   4,
		RecsPerLine:    4,
		Pages:          16,
		LockTableLines: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// crashedRun drives one crash/recover episode on an attached DB: seed, run
// to mid-flight, crash node 3, recover. This is the CI smoke scenario — the
// same shape the smdb-sim command executes.
func crashedRun(t *testing.T, db *recovery.DB) {
	t.Helper()
	if err := workload.Seed(db, 0); err != nil {
		t.Fatal(err)
	}
	r := workload.NewRunner(db, workload.Spec{
		TxnsPerNode: 4, OpsPerTxn: 6,
		ReadFraction: 0.4, SharingFraction: 0.6, Seed: 7,
	})
	if _, err := r.RunUntilMidFlight(12); err != nil {
		t.Fatal(err)
	}
	db.Crash(3)
	if _, err := db.Recover([]machine.NodeID{3}); err != nil {
		t.Fatal(err)
	}
}

// promLine matches one Prometheus text-exposition sample:
// metric{optional="labels"} value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9.e+-]+(Inf)?$`)

// TestStackSmoke is the in-process half of the CI observability smoke: build
// the full stack from flags, run a crash episode, scrape every introspection
// endpoint of the live server, validate the Prometheus exposition format,
// and assert the crash left a well-formed flight dump.
func TestStackSmoke(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	flightDir := filepath.Join(dir, "dumps")
	f := parseFlags(t,
		"-trace", tracePath, "-metrics",
		"-http", "127.0.0.1:0",
		"-flightdir", flightDir, "-flightn", "64")
	if !f.Enabled() {
		t.Fatal("flags not enabled")
	}
	s, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer s.HTTP.Shutdown()

	db := newDB(t, recovery.VolatileSelectiveRedo)
	tr := s.Attach(db)
	if tr == nil || db.Observer() != s.Obs || db.Deps() != tr || s.Tracker() != tr {
		t.Fatal("Attach did not wire the DB")
	}
	crashedRun(t, db)

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get("http://" + s.HTTP.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, _ := get("/healthz")
	if code != 200 || !strings.HasPrefix(body, "ok events=") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body, ctype := get("/metrics")
	if code != 200 || !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics = %d content-type %q", code, ctype)
	}
	samples := 0
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		samples++
		if !promLine.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
	if samples == 0 {
		t.Error("/metrics served no samples")
	}
	if !strings.Contains(body, `smdb_events_total{kind="crash"} 1`) {
		t.Error("/metrics missing the crash counter")
	}

	code, body, _ = get("/trace")
	if code != 200 || !json.Valid([]byte(body)) {
		t.Errorf("/trace = %d, valid JSON = %v", code, json.Valid([]byte(body)))
	}

	code, body, _ = get("/deps")
	if code != 200 || !strings.Contains(body, "digraph recovery_deps") {
		t.Errorf("/deps = %d %q", code, body[:minInt(len(body), 80)])
	}
	code, body, _ = get("/deps?format=json")
	if code != 200 || !json.Valid([]byte(body)) || !strings.Contains(body, `"txns"`) {
		t.Errorf("/deps?format=json = %d %q", code, body[:minInt(len(body), 80)])
	}

	// The crash must have produced a well-formed flight dump.
	dumps := s.Flight.Dumps()
	if len(dumps) == 0 {
		t.Fatal("crash episode left no flight dump")
	}
	for _, file := range []string{"MANIFEST.txt", "events.json", "deps.dot", "deps.json", "stats.txt"} {
		if _, err := os.Stat(filepath.Join(dumps[0], file)); err != nil {
			t.Errorf("flight dump missing %s: %v", file, err)
		}
	}
	raw, err := os.ReadFile(filepath.Join(dumps[0], "events.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("flight events.json invalid: %v", err)
	}
	if doc.Reason != "crash" {
		t.Errorf("flight dump reason = %q, want crash", doc.Reason)
	}

	// Finish writes the trace file and prints the metrics table.
	var out strings.Builder
	if err := s.Finish(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "line_lock_latency") {
		t.Errorf("-metrics table missing from Finish output:\n%s", out.String())
	}
	traced, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(traced) || !strings.Contains(string(traced), `"traceEvents"`) {
		t.Error("-trace output is not a Chrome trace")
	}
}

// TestStackTrackerSwap models the chaos sweep: each per-seed DB gets a fresh
// tracker, and the stack's GraphWriter (what /deps serves) follows the swap.
func TestStackTrackerSwap(t *testing.T) {
	f := parseFlags(t, "-metrics")
	s, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	db1 := newDB(t, recovery.StableEager)
	tr1 := s.Attach(db1)
	db2 := newDB(t, recovery.StableEager)
	tr2 := s.Attach(db2)
	if tr1 == nil || tr2 == nil || tr1 == tr2 {
		t.Fatalf("expected two distinct trackers, got %p %p", tr1, tr2)
	}
	if s.Tracker() != tr2 {
		t.Error("stack did not swap to the newest tracker")
	}
	var dot strings.Builder
	if err := s.WriteDOT(&dot); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph recovery_deps") {
		t.Errorf("stack DOT = %q", dot.String())
	}
	var js strings.Builder
	if err := s.WriteGraphJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(js.String())) {
		t.Errorf("stack graph JSON invalid: %q", js.String())
	}
	if err := s.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestStackGraphWriterBeforeAttach: the HTTP server is built before any DB
// exists; /deps must degrade to the empty graph, not panic.
func TestStackGraphWriterBeforeAttach(t *testing.T) {
	f := parseFlags(t, "-http", "127.0.0.1:0")
	s, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer s.HTTP.Shutdown()
	resp, err := http.Get("http://" + s.HTTP.Addr + "/deps")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "digraph recovery_deps") {
		t.Errorf("/deps before Attach = %d %q", resp.StatusCode, body)
	}
	if err := s.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsBadAddr(t *testing.T) {
	f := parseFlags(t, "-http", "256.256.256.256:99999")
	if _, err := f.Build(); err == nil {
		t.Error("Build accepted an unusable -http address")
	}
}

func TestHTTPHoldDelaysShutdown(t *testing.T) {
	f := parseFlags(t, "-http", "127.0.0.1:0", "-httphold", "50ms")
	s, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("Finish returned after %s, want >= httphold", d)
	}
	if _, err := http.Get("http://" + s.HTTP.Addr + "/healthz"); err == nil {
		t.Error("server still serving after Finish")
	}
}

// TestHTTPHoldInterruptedBySignal is the -httphold shutdown contract: a held
// introspection server must end the hold and shut down cleanly on SIGTERM
// instead of blocking for the full duration.
func TestHTTPHoldInterruptedBySignal(t *testing.T) {
	f := parseFlags(t, "-http", "127.0.0.1:0", "-httphold", "30s")
	s, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Finish(io.Discard) }()
	// Wait until the hold is live — Holding flips true only after the signal
	// handler is armed, so the SIGTERM below cannot race it and kill the test.
	deadline := time.Now().Add(5 * time.Second)
	for !s.Holding() {
		if time.Now().After(deadline) {
			t.Fatal("Finish never entered the httphold grace period")
		}
		time.Sleep(time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SIGTERM did not end the httphold")
	}
	if _, err := http.Get("http://" + s.HTTP.Addr + "/healthz"); err == nil {
		t.Error("server still serving after interrupted hold")
	}
}

// TestStopHoldEndsHoldEarly is the embedded-host half of the same contract.
func TestStopHoldEndsHoldEarly(t *testing.T) {
	f := parseFlags(t, "-http", "127.0.0.1:0", "-httphold", "30s")
	s, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Finish(io.Discard) }()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Holding() {
		if time.Now().After(deadline) {
			t.Fatal("Finish never entered the httphold grace period")
		}
		time.Sleep(time.Millisecond)
	}
	s.StopHold()
	s.StopHold() // idempotent
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("StopHold did not end the httphold")
	}
}

// TestStackAuditWiring: -audit attaches a per-DB auditor, the HTTP audit
// endpoints follow the swap, a clean crash episode on a real protocol yields
// zero violations, and Finish prints the audit summary.
func TestStackAuditWiring(t *testing.T) {
	f := parseFlags(t, "-audit", "-http", "127.0.0.1:0")
	s, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer s.HTTP.Shutdown()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + s.HTTP.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		return string(body)
	}

	// Before the first Attach the audit surfaces exist but report disabled.
	if body := get("/audit/violations"); !strings.Contains(body, `"enabled": false`) {
		t.Errorf("/audit/violations before Attach = %q", body)
	}

	db := newDB(t, recovery.StableEager)
	s.Attach(db)
	if s.Auditor() == nil {
		t.Fatal("-audit Attach left no auditor")
	}
	if db.Audit() != s.Auditor() {
		t.Error("DB and stack disagree on the auditor")
	}
	crashedRun(t, db)

	if n := s.Auditor().ViolationCount(); n != 0 {
		t.Errorf("clean StableEager episode raised %d violations: %+v", n, s.Auditor().Violations())
	}
	body := get("/audit/txn")
	if !strings.Contains(body, `"enabled": true`) || !strings.Contains(body, `"summary"`) {
		t.Errorf("/audit/txn = %q", body[:minInt(len(body), 120)])
	}
	if !json.Valid([]byte(body)) {
		t.Error("/audit/txn is not valid JSON")
	}
	body = get("/audit/violations")
	if !strings.Contains(body, `"total": 0`) {
		t.Errorf("/audit/violations = %q", body[:minInt(len(body), 120)])
	}
	body = get("/timeseries")
	if !json.Valid([]byte(body)) || !strings.Contains(body, `"windows"`) {
		t.Errorf("/timeseries = %q", body[:minInt(len(body), 120)])
	}

	// A second Attach swaps in a fresh auditor (the sweep shape).
	db2 := newDB(t, recovery.VolatileSelectiveRedo)
	a1 := s.Auditor()
	s.Attach(db2)
	if s.Auditor() == a1 {
		t.Error("Attach did not swap the auditor")
	}

	var out strings.Builder
	if err := s.Finish(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "audit:") {
		t.Errorf("Finish output missing the audit summary:\n%s", out.String())
	}
}

func TestPrintVerdicts(t *testing.T) {
	f := parseFlags(t, "-metrics")
	s, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := newDB(t, recovery.VolatileSelectiveRedo)
	s.Attach(db)
	crashedRun(t, db)
	var out strings.Builder
	s.PrintVerdicts(&out)
	if !strings.Contains(out.String(), "dependency explainer") {
		t.Errorf("no verdicts printed after a crash:\n%s", out.String())
	}
	if err := s.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
	// A disabled stack prints nothing.
	var s2 Stack
	var empty strings.Builder
	s2.PrintVerdicts(&empty)
	if empty.Len() != 0 {
		t.Errorf("disabled stack printed %q", empty.String())
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
