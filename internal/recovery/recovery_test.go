package recovery_test

import (
	"errors"
	"testing"

	"smdb/internal/heap"
	"smdb/internal/lock"
	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/storage"
	"smdb/internal/txn"
)

// ifaProtocols are the protocols that must guarantee IFA.
var ifaProtocols = []recovery.Protocol{
	recovery.VolatileRedoAll,
	recovery.VolatileSelectiveRedo,
	recovery.StableEager,
	recovery.StableTriggered,
}

func newDB(t *testing.T, proto recovery.Protocol, nodes int) (*recovery.DB, *txn.Manager) {
	t.Helper()
	db, err := recovery.New(recovery.Config{
		Machine:        machine.Config{Nodes: nodes, Lines: 2048},
		Protocol:       proto,
		LinesPerPage:   4,
		RecsPerLine:    4,
		Pages:          16,
		LockTableLines: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, txn.NewManager(db)
}

// seed commits initial values into the given rids from node 0 and
// checkpoints, so every record has a last committed image on stable store.
func seed(t *testing.T, mgr *txn.Manager, rids []heap.RID, val byte) {
	t.Helper()
	tx, err := mgr.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rid := range rids {
		if err := tx.Insert(rid, []byte{val, byte(rid.Page), byte(rid.Slot)}); err != nil {
			t.Fatalf("seed insert %v: %v", rid, err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.DB.Checkpoint(0); err != nil {
		t.Fatal(err)
	}
}

func mustCheckIFA(t *testing.T, db *recovery.DB, nd machine.NodeID) {
	t.Helper()
	if v := db.CheckIFA(nd); len(v) != 0 {
		for _, s := range v {
			t.Errorf("IFA violation: %s", s)
		}
	}
}

// TestFigure2CrashOfTxnNode reproduces figure 2, crash case 1: records r1
// and r2 share a cache line; t_x (node 0) updates r1, t_y (node 1) updates
// r2, migrating the line to node 1; node 0 crashes. IFA requires t_x's
// update to be undone (even though it lives on in node 1's cache) and t_y's
// update to be preserved.
func TestFigure2CrashOfTxnNode(t *testing.T) {
	r1 := heap.RID{Page: 0, Slot: 0}
	r2 := heap.RID{Page: 0, Slot: 1}
	for _, proto := range ifaProtocols {
		t.Run(proto.String(), func(t *testing.T) {
			db, mgr := newDB(t, proto, 2)
			seed(t, mgr, []heap.RID{r1, r2}, 1)

			tx, err := mgr.Begin(0)
			if err != nil {
				t.Fatal(err)
			}
			ty, err := mgr.Begin(1)
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Write(r1, []byte{100}); err != nil {
				t.Fatal(err)
			}
			if err := ty.Write(r2, []byte{200}); err != nil {
				t.Fatal(err)
			}
			// The line now lives only on node 1 (H_ww1 migration).
			line, _, _ := db.Store.LineOf(r1)
			if got := db.M.ExclusiveHolder(line); got != 1 {
				t.Fatalf("line holder = %d, want 1 (migrated)", got)
			}

			db.Crash(0)
			rep, err := db.Recover([]machine.NodeID{0})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Aborted) != 1 || rep.Aborted[0] != tx.ID() {
				t.Errorf("Aborted = %v, want [%v]", rep.Aborted, tx.ID())
			}
			// t_x's uncommitted update must be gone; the seeded value back.
			got, err := db.Read(1, r1)
			if err != nil {
				t.Fatal(err)
			}
			if got.Data[0] != 1 {
				t.Errorf("r1 = %d, want 1 (t_x undone)", got.Data[0])
			}
			// t_y's update must be intact (no unnecessary abort).
			if st, _ := db.Status(ty.ID()); st != recovery.TxnActive {
				t.Errorf("t_y status = %v, want active", st)
			}
			got2, err := db.Read(1, r2)
			if err != nil {
				t.Fatal(err)
			}
			if got2.Data[0] != 200 {
				t.Errorf("r2 = %d, want 200 (t_y preserved)", got2.Data[0])
			}
			mustCheckIFA(t, db, 1)
			// And t_y can still commit afterwards.
			if err := ty.Commit(); err != nil {
				t.Fatalf("t_y commit after recovery: %v", err)
			}
		})
	}
}

// TestFigure2CrashOfRemoteNode is figure 2, crash case 2: the line holding
// t_x's update migrated to node 1 and node 1 crashes, destroying it. IFA
// requires t_x's update to be redone so t_x (on the surviving node 0) loses
// nothing.
func TestFigure2CrashOfRemoteNode(t *testing.T) {
	r1 := heap.RID{Page: 0, Slot: 0}
	r2 := heap.RID{Page: 0, Slot: 1}
	for _, proto := range ifaProtocols {
		t.Run(proto.String(), func(t *testing.T) {
			db, mgr := newDB(t, proto, 2)
			seed(t, mgr, []heap.RID{r1, r2}, 1)

			tx, err := mgr.Begin(0)
			if err != nil {
				t.Fatal(err)
			}
			ty, err := mgr.Begin(1)
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Write(r1, []byte{100}); err != nil {
				t.Fatal(err)
			}
			if err := ty.Write(r2, []byte{200}); err != nil {
				t.Fatal(err)
			}
			db.Crash(1)
			rep, err := db.Recover([]machine.NodeID{1})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Aborted) != 1 || rep.Aborted[0] != ty.ID() {
				t.Errorf("Aborted = %v, want [%v]", rep.Aborted, ty.ID())
			}
			// t_x's update must have been redone from node 0's log.
			got, err := db.Read(0, r1)
			if err != nil {
				t.Fatal(err)
			}
			if got.Data[0] != 100 {
				t.Errorf("r1 = %d, want 100 (t_x's update redone)", got.Data[0])
			}
			// t_y's update must be gone (its node crashed).
			got2, err := db.Read(0, r2)
			if err != nil {
				t.Fatal(err)
			}
			if got2.Data[0] != 1 {
				t.Errorf("r2 = %d, want 1 (t_y undone)", got2.Data[0])
			}
			mustCheckIFA(t, db, 0)
			if err := tx.Commit(); err != nil {
				t.Fatalf("t_x commit after recovery: %v", err)
			}
		})
	}
}

// TestBaselineRebootsEverything: under the conventional protocol, any node
// crash aborts every active transaction in the system — including ones on
// nodes that did not fail — while committed work survives.
func TestBaselineRebootsEverything(t *testing.T) {
	r1 := heap.RID{Page: 0, Slot: 0}
	r2 := heap.RID{Page: 1, Slot: 0} // different page: no physical sharing at all
	db, mgr := newDB(t, recovery.BaselineFA, 2)
	seed(t, mgr, []heap.RID{r1, r2}, 1)

	tx, _ := mgr.Begin(0)
	ty, _ := mgr.Begin(1)
	if err := tx.Write(r1, []byte{100}); err != nil {
		t.Fatal(err)
	}
	if err := ty.Write(r2, []byte{200}); err != nil {
		t.Fatal(err)
	}
	db.Crash(0)
	rep, err := db.Recover([]machine.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Aborted) != 2 {
		t.Errorf("baseline aborted %d transactions, want 2 (everything)", len(rep.Aborted))
	}
	if st, _ := db.Status(ty.ID()); st != recovery.TxnAborted {
		t.Errorf("t_y status = %v, want aborted (unnecessary abort is the baseline's defect)", st)
	}
	for _, rid := range []heap.RID{r1, r2} {
		got, err := db.Read(0, rid)
		if err != nil {
			t.Fatal(err)
		}
		if got.Data[0] != 1 {
			t.Errorf("%v = %d, want seeded 1", rid, got.Data[0])
		}
	}
}

// TestCommittedWorkSurvivesAnyCrash: committed transactions are durable
// under every protocol even when every node crashes.
func TestCommittedWorkSurvivesAnyCrash(t *testing.T) {
	rid := heap.RID{Page: 2, Slot: 3}
	for _, proto := range recovery.Protocols() {
		t.Run(proto.String(), func(t *testing.T) {
			db, mgr := newDB(t, proto, 2)
			seed(t, mgr, []heap.RID{rid}, 1)
			tx, _ := mgr.Begin(1)
			if err := tx.Write(rid, []byte{77}); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			// Crash the committing node before its page was ever flushed:
			// redo from its stable log (forced at commit) must restore it.
			db.Crash(1)
			if _, err := db.Recover([]machine.NodeID{1}); err != nil {
				t.Fatal(err)
			}
			got, err := db.Read(0, rid)
			if err != nil {
				t.Fatal(err)
			}
			if got.Data[0] != 77 {
				t.Errorf("committed value = %d, want 77", got.Data[0])
			}
		})
	}
}

// TestStealThenCrash: an uncommitted update stolen to disk is undone from
// the stable log (the WAL rule guarantees its undo record was forced first).
func TestStealThenCrash(t *testing.T) {
	rid := heap.RID{Page: 0, Slot: 0}
	for _, proto := range ifaProtocols {
		t.Run(proto.String(), func(t *testing.T) {
			db, mgr := newDB(t, proto, 2)
			seed(t, mgr, []heap.RID{rid}, 9)
			tx, _ := mgr.Begin(0)
			if err := tx.Write(rid, []byte{66}); err != nil {
				t.Fatal(err)
			}
			// Steal: flush the page carrying the uncommitted update.
			if err := db.BM.FlushPage(0, rid.Page); err != nil {
				t.Fatal(err)
			}
			if db.Logs[0].ForcedLSN() == 0 {
				t.Fatal("WAL rule did not force the updater's log")
			}
			db.Crash(0)
			if _, err := db.Recover([]machine.NodeID{0}); err != nil {
				t.Fatal(err)
			}
			got, err := db.Read(1, rid)
			if err != nil {
				t.Fatal(err)
			}
			if got.Data[0] != 9 {
				t.Errorf("stolen update not undone: %d, want 9", got.Data[0])
			}
			mustCheckIFA(t, db, 1)
		})
	}
}

// TestAbortRestoresBeforeImages: a plain abort (no crash) reinstalls every
// before image and clears undo tags.
func TestAbortRestoresBeforeImages(t *testing.T) {
	rids := []heap.RID{{Page: 0, Slot: 0}, {Page: 1, Slot: 5}}
	db, mgr := newDB(t, recovery.VolatileSelectiveRedo, 2)
	seed(t, mgr, rids, 3)
	tx, _ := mgr.Begin(1)
	for _, rid := range rids {
		if err := tx.Write(rid, []byte{111}); err != nil {
			t.Fatal(err)
		}
	}
	// Multiple updates to the same record: undo walks back to the first.
	if err := tx.Write(rids[0], []byte{112}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	for _, rid := range rids {
		sd, err := db.Read(0, rid)
		if err != nil {
			t.Fatal(err)
		}
		if sd.Data[0] != 3 {
			t.Errorf("%v = %d after abort, want 3", rid, sd.Data[0])
		}
		if sd.Tag != machine.NoNode {
			t.Errorf("%v tag = %d after abort, want none", rid, sd.Tag)
		}
	}
	mustCheckIFA(t, db, 0)
}

// TestDeleteUndoIsUnmark: an uncommitted logical delete is undone by
// unmarking; the record bytes were never destroyed (section 4.2.1).
func TestDeleteUndoIsUnmark(t *testing.T) {
	rid := heap.RID{Page: 0, Slot: 2}
	db, mgr := newDB(t, recovery.VolatileSelectiveRedo, 2)
	seed(t, mgr, []heap.RID{rid}, 5)
	tx, _ := mgr.Begin(1)
	if err := tx.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(rid); !errors.Is(err, txn.ErrNotFound) {
		t.Errorf("read of deleted record: err = %v, want ErrNotFound", err)
	}
	// Crash the deleter: the delete must be undone on the survivor.
	db.Crash(1)
	if _, err := db.Recover([]machine.NodeID{1}); err != nil {
		t.Fatal(err)
	}
	sd, err := db.Read(0, rid)
	if err != nil {
		t.Fatal(err)
	}
	if !sd.Occupied() || sd.Deleted() {
		t.Errorf("delete not undone: flags = %#x", sd.Flags)
	}
	if sd.Data[0] != 5 {
		t.Errorf("record bytes lost in delete undo: %d", sd.Data[0])
	}
	mustCheckIFA(t, db, 0)
}

// TestCommitClearsTags: after commit, no undo tag remains (the record is no
// longer active).
func TestCommitClearsTags(t *testing.T) {
	rid := heap.RID{Page: 0, Slot: 1}
	db, mgr := newDB(t, recovery.VolatileSelectiveRedo, 2)
	seed(t, mgr, []heap.RID{rid}, 2)
	tx, _ := mgr.Begin(0)
	if err := tx.Write(rid, []byte{10}); err != nil {
		t.Fatal(err)
	}
	sd, _ := db.Read(0, rid)
	if sd.Tag != 0 {
		t.Fatalf("active record tag = %d, want 0", sd.Tag)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	sd, _ = db.Read(0, rid)
	if sd.Tag != machine.NoNode {
		t.Errorf("tag after commit = %d, want none", sd.Tag)
	}
	st := db.Stats()
	if st.TagWrites == 0 || st.TagClears == 0 {
		t.Errorf("tag accounting: %+v", st)
	}
}

// TestLockSpaceAcrossCrash: shared locks of a surviving transaction stored
// in an LCB that dies with another node are rebuilt from the read-lock log;
// the crashed transaction's locks are released.
func TestLockSpaceAcrossCrash(t *testing.T) {
	rid := heap.RID{Page: 3, Slot: 0}
	for _, proto := range ifaProtocols {
		t.Run(proto.String(), func(t *testing.T) {
			db, mgr := newDB(t, proto, 2)
			seed(t, mgr, []heap.RID{rid}, 1)
			tx, _ := mgr.Begin(0)
			ty, _ := mgr.Begin(1)
			// Both read-lock the same record; node 1 acquires last, so the
			// LCB line is valid only there (the section 3.1 example).
			if _, err := tx.Read(rid); err != nil {
				t.Fatal(err)
			}
			if _, err := ty.Read(rid); err != nil {
				t.Fatal(err)
			}
			db.Crash(1)
			rep, err := db.Recover([]machine.NodeID{1})
			if err != nil {
				t.Fatal(err)
			}
			if rep.LocksReplayed == 0 {
				t.Error("no lock replay happened")
			}
			mustCheckIFA(t, db, 0)
			// The surviving transaction can upgrade and write: the dead
			// transaction's share lock is gone.
			if err := txn.Retry(func() error { return tx.Write(rid, []byte{50}) }); err != nil {
				t.Fatalf("survivor blocked by dead transaction's lock: %v", err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCanceledWaitNotResurrected: a queued lock request that was withdrawn
// with CancelWait before a crash must not come back as a grant after
// recovery. The acquire is logged before the grant decision, so the lock
// log alone over-approximates what was held; a replay that trusted it
// would re-grant the lock to a transaction that never knew it held it —
// nothing would ever release it, and every later waiter would wedge with
// no waits-for cycle to break.
func TestCanceledWaitNotResurrected(t *testing.T) {
	rid := heap.RID{Page: 3, Slot: 1}
	for _, proto := range ifaProtocols {
		t.Run(proto.String(), func(t *testing.T) {
			db, mgr := newDB(t, proto, 2)
			seed(t, mgr, []heap.RID{rid}, 1)
			tx, _ := mgr.Begin(0)
			ty, _ := mgr.Begin(1)
			if err := tx.Write(rid, []byte{7}); err != nil {
				t.Fatal(err)
			}
			name := lock.NameOfRID(rid)
			// ty queues behind tx's exclusive lock, then gives up the wait
			// (the deadlock-victim path) without aborting.
			granted, err := db.Locks.Acquire(1, ty.ID(), name, lock.Exclusive)
			if err != nil {
				t.Fatal(err)
			}
			if granted {
				t.Fatal("conflicting acquire granted immediately")
			}
			if err := db.Locks.CancelWait(1, ty.ID(), name); err != nil {
				t.Fatal(err)
			}
			db.Crash(0)
			if _, err := db.Recover([]machine.NodeID{0}); err != nil {
				t.Fatal(err)
			}
			if _, held, err := db.Locks.Holds(1, ty.ID(), name); err != nil {
				t.Fatal(err)
			} else if held {
				t.Fatal("canceled wait resurrected as a grant by lock replay")
			}
			snap, err := db.Locks.Snapshot(1)
			if err != nil {
				t.Fatal(err)
			}
			for _, ls := range snap {
				if ls.Name != name {
					continue
				}
				for _, e := range append(ls.Holders, ls.Waiters...) {
					if e.Txn == ty.ID() {
						t.Fatalf("withdrawn request survives in lock space: %+v", ls)
					}
				}
			}
			mustCheckIFA(t, db, 1)
			if err := ty.Commit(); err != nil {
				t.Fatal(err)
			}
			// The record must be freely lockable afterwards — a leaked entry
			// here is exactly the chaos-suite wedge.
			tz, _ := mgr.Begin(1)
			if err := txn.Retry(func() error { return tz.Write(rid, []byte{9}) }); err != nil {
				t.Fatalf("record wedged after recovery: %v", err)
			}
			if err := tz.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestNTASurvivesAbort: structural changes (nested top-level actions) are
// committed early and survive the enclosing transaction's abort — and a
// crash of the enclosing transaction's node.
func TestNTASurvivesAbort(t *testing.T) {
	structural := heap.RID{Page: 4, Slot: 0}
	normal := heap.RID{Page: 4, Slot: 1}
	db, mgr := newDB(t, recovery.VolatileSelectiveRedo, 2)
	seed(t, mgr, []heap.RID{normal}, 1)

	tx, _ := mgr.Begin(0)
	nta, err := db.BeginNTA(0, tx.ID())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.StructuralUpdate(0, tx.ID(), structural, heap.FlagOccupied, []byte{88}, nta); err != nil {
		t.Fatal(err)
	}
	if err := db.EndNTA(0, tx.ID(), nta); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(normal, []byte{99}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	sd, err := db.Read(1, structural)
	if err != nil {
		t.Fatal(err)
	}
	if !sd.Occupied() || sd.Data[0] != 88 {
		t.Errorf("structural change undone by abort: %+v", sd)
	}
	sd, _ = db.Read(1, normal)
	if sd.Data[0] != 1 {
		t.Errorf("normal update not undone: %d", sd.Data[0])
	}
	if db.Stats().NTAForces == 0 {
		t.Error("structural change was not committed early (no NTA force)")
	}

	// Crash-variant: structural change by a transaction whose node dies.
	ty, _ := mgr.Begin(1)
	nta2, err := db.BeginNTA(1, ty.ID())
	if err != nil {
		t.Fatal(err)
	}
	structural2 := heap.RID{Page: 5, Slot: 0}
	if err := db.StructuralUpdate(1, ty.ID(), structural2, heap.FlagOccupied, []byte{89}, nta2); err != nil {
		t.Fatal(err)
	}
	if err := db.EndNTA(1, ty.ID(), nta2); err != nil {
		t.Fatal(err)
	}
	db.Crash(1)
	if _, err := db.Recover([]machine.NodeID{1}); err != nil {
		t.Fatal(err)
	}
	sd, err = db.Read(0, structural2)
	if err != nil {
		t.Fatal(err)
	}
	if !sd.Occupied() || sd.Data[0] != 89 {
		t.Errorf("early-committed structural change lost in crash: %+v", sd)
	}
}

// TestDirtyReadReplication: with dirty reads (browse), H_wr replication
// spreads an uncommitted update to a reader's node even with one record per
// line; Selective Redo's tag scan still undoes it there when the updater
// crashes.
func TestDirtyReadReplication(t *testing.T) {
	db, err := recovery.New(recovery.Config{
		Machine:        machine.Config{Nodes: 2, Lines: 2048},
		Protocol:       recovery.VolatileSelectiveRedo,
		LinesPerPage:   4,
		RecsPerLine:    1, // one object per cache line
		Pages:          8,
		LockTableLines: 64,
		DirtyReads:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr := txn.NewManager(db)
	rid := heap.RID{Page: 0, Slot: 0}
	seed(t, mgr, []heap.RID{rid}, 7)

	tx, _ := mgr.Begin(0)
	if err := tx.Write(rid, []byte{42}); err != nil {
		t.Fatal(err)
	}
	ty, _ := mgr.Begin(1)
	dirty, err := ty.ReadDirty(rid)
	if err != nil {
		t.Fatal(err)
	}
	if dirty[0] != 42 {
		t.Fatalf("dirty read = %d, want 42", dirty[0])
	}
	// The line is now replicated on node 1. Crash the updater: the
	// surviving copy carries t_x's tag and must be reverted.
	db.Crash(0)
	if _, err := db.Recover([]machine.NodeID{0}); err != nil {
		t.Fatal(err)
	}
	sd, err := db.Read(1, rid)
	if err != nil {
		t.Fatal(err)
	}
	if sd.Data[0] != 7 {
		t.Errorf("dirty-replicated update not undone: %d, want 7", sd.Data[0])
	}
	mustCheckIFA(t, db, 1)
}

// TestCheckpointBoundsRedo: redo work is bounded by the last checkpoint.
func TestCheckpointBoundsRedo(t *testing.T) {
	db, mgr := newDB(t, recovery.VolatileRedoAll, 2)
	rids := []heap.RID{{Page: 0, Slot: 0}, {Page: 1, Slot: 0}, {Page: 2, Slot: 0}}
	seed(t, mgr, rids, 1)
	// Pre-checkpoint committed work.
	tx, _ := mgr.Begin(0)
	for _, rid := range rids {
		if err := tx.Write(rid, []byte{2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(0); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint: one more committed update.
	ty, _ := mgr.Begin(0)
	if err := ty.Write(rids[0], []byte{3}); err != nil {
		t.Fatal(err)
	}
	if err := ty.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Crash(1) // crash a bystander; node 0 survives
	rep, err := db.Recover([]machine.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	total := rep.RedoApplied + rep.RedoSkipped
	if total > 2 { // the post-ckpt update (+ possibly its page header sibling)
		t.Errorf("redo examined %d records, want <= 2 (checkpoint should bound the scan)", total)
	}
	got, _ := db.Read(0, rids[0])
	if got.Data[0] != 3 {
		t.Errorf("post-checkpoint committed value = %d, want 3", got.Data[0])
	}
}

// TestRedoAllDoesMoreWork: on the same scenario, Redo All performs at least
// as many redo applications as Selective Redo (it discards every cache).
func TestRedoAllDoesMoreWork(t *testing.T) {
	run := func(proto recovery.Protocol) int {
		db, mgr := newDB(t, proto, 3)
		rids := make([]heap.RID, 8)
		for i := range rids {
			rids[i] = heap.RID{Page: 0, Slot: uint16(i)}
		}
		seed(t, mgr, rids, 1)
		// Survivor node 1 commits updates after the checkpoint; they stay
		// cached (not flushed).
		tx, _ := mgr.Begin(1)
		for _, rid := range rids {
			if err := tx.Write(rid, []byte{9}); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		db.Crash(2) // bystander crash; node 1's cached pages survive
		rep, err := db.Recover([]machine.NodeID{2})
		if err != nil {
			t.Fatal(err)
		}
		return rep.RedoApplied
	}
	redoAll := run(recovery.VolatileRedoAll)
	selective := run(recovery.VolatileSelectiveRedo)
	if redoAll <= selective {
		t.Errorf("RedoApplied: redo-all = %d, selective = %d; want redo-all > selective", redoAll, selective)
	}
	if selective != 0 {
		t.Errorf("selective redo applied %d records for a crash that lost nothing, want 0", selective)
	}
}

// TestMultiNodeCrash: IFA holds when several nodes crash at once.
func TestMultiNodeCrash(t *testing.T) {
	for _, proto := range ifaProtocols {
		t.Run(proto.String(), func(t *testing.T) {
			db, mgr := newDB(t, proto, 4)
			rids := make([]heap.RID, 8)
			for i := range rids {
				rids[i] = heap.RID{Page: storage.PageID(i / 4), Slot: uint16(i % 4)}
			}
			seed(t, mgr, rids, 1)
			var txns [4]*txn.Txn
			for n := 0; n < 4; n++ {
				txns[n], _ = mgr.Begin(machine.NodeID(n))
				if err := txns[n].Write(rids[n*2], []byte{byte(100 + n)}); err != nil {
					t.Fatal(err)
				}
			}
			db.Crash(1, 3)
			rep, err := db.Recover([]machine.NodeID{1, 3})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Aborted) != 2 {
				t.Errorf("aborted %v, want the two crashed transactions", rep.Aborted)
			}
			mustCheckIFA(t, db, 0)
			// Survivors commit.
			if err := txns[0].Commit(); err != nil {
				t.Fatal(err)
			}
			if err := txns[2].Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestChainedLCBRecovery runs the lock-space crash scenario with multi-line
// (chained) LCBs: a crash that destroys chain fragments drops the whole
// LCB, and recovery rebuilds it from the read-lock logs — IFA still holds.
func TestChainedLCBRecovery(t *testing.T) {
	db, err := recovery.New(recovery.Config{
		Machine:        machine.Config{Nodes: 4, Lines: 2048},
		Protocol:       recovery.VolatileSelectiveRedo,
		LinesPerPage:   4,
		RecsPerLine:    4,
		Pages:          16,
		LockTableLines: 64,
		ChainedLCBs:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr := txn.NewManager(db)
	rid := heap.RID{Page: 0, Slot: 0}
	seed(t, mgr, []heap.RID{rid}, 1)

	// Many transactions per node share read locks on one record: the LCB
	// overflows into chained lines. (The one-line organization would
	// reject this with ErrLCBFull.)
	var txns []*txn.Txn
	for n := 0; n < 4; n++ {
		for k := 0; k < 4; k++ {
			tx, err := mgr.Begin(machine.NodeID(n))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Read(rid); err != nil {
				t.Fatal(err)
			}
			txns = append(txns, tx)
		}
	}
	snap, err := db.Locks.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || len(snap[0].Holders) != 16 {
		t.Fatalf("expected one chained LCB with 16 holders, got %+v", snap)
	}
	// The snapshot replicated the chain's lines to node 0; one more
	// acquisition from node 3 rewrites the whole chain, invalidating the
	// replicas, so the chain again lives only on the node about to die.
	extra, err := mgr.Begin(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := extra.Read(rid); err != nil {
		t.Fatal(err)
	}
	txns = append(txns, extra)

	db.Crash(3)
	rep, err := db.Recover([]machine.NodeID{3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LCBChainsDropped == 0 && rep.LCBsReinstalled == 0 {
		t.Error("crash did not touch the chained lock space (scenario too weak)")
	}
	mustCheckIFA(t, db, 0)
	// Survivors' 12 read locks are all back; the crashed node's 4 are gone.
	snap, err = db.Locks.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || len(snap[0].Holders) != 12 {
		t.Fatalf("after recovery: %+v, want 12 holders", snap)
	}
	for _, tx := range txns {
		if tx.Node() != 3 {
			if err := tx.Commit(); err != nil {
				t.Fatalf("survivor commit: %v", err)
			}
		}
	}
}
