package recovery

import (
	"errors"
	"fmt"
	"sort"

	"smdb/internal/heap"
	"smdb/internal/lock"
	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/obs/prof"
	"smdb/internal/obs/waterfall"
	"smdb/internal/wal"
)

// wfProgress returns the attached waterfall recorder's recovery-progress
// observer; nil (a no-op observer) when no recorder is attached.
func (db *DB) wfProgress() *waterfall.Progress {
	return db.wfp.Load().Progress()
}

// Restart recovery (section 4.1.2 for database objects, 4.2 for support
// structures). The caller injects failures with Crash and then runs Recover
// on the survivors. Recovery never reads a crashed node's volatile state:
// for crashed nodes only the stable log prefix and whatever cache lines
// migrated to survivors are available.

// RecoveryReport summarizes one restart recovery run.
type RecoveryReport struct {
	Protocol Protocol
	Crashed  []machine.NodeID
	// RedoApplied / RedoSkipped count redo decisions; UndoApplied counts
	// undo installations (stable-log undos plus tag-scan undos).
	RedoApplied, RedoSkipped, UndoApplied int
	// TagScanLines is the number of cache lines examined by the Selective
	// Redo undo scan.
	TagScanLines int
	// Aborted lists transactions aborted by recovery. Under IFA these are
	// exactly the crashed nodes' active transactions; under the baseline,
	// every active transaction in the system.
	Aborted []wal.TxnID
	// LCBsReinstalled, LockEntriesReleased, LocksReplayed count lock-space
	// recovery work; LCBChainsDropped counts chained LCBs discarded whole
	// (broken chains plus orphaned fragments) for rebuild from the logs.
	LCBsReinstalled, LockEntriesReleased, LocksReplayed, LCBChainsDropped int
	// Attempts counts recovery entries: 1 for an undisturbed run, more when
	// a crash during recovery forced a restartable re-entry.
	// CoordinatorFailovers counts the subset of re-entries that elected a
	// new coordinator because the previous one died mid-recovery.
	Attempts, CoordinatorFailovers int
	// SimTime is the simulated duration of recovery in nanoseconds
	// (makespan increase across nodes).
	SimTime int64
	// Phases breaks SimTime down into the recovery phases, in execution
	// order (plus a leading freeze span covering crash-to-recovery time when
	// known). Durations are simulated nanoseconds.
	Phases []obs.PhaseSpan
	// Workers is the parallel fan-out recovery ran with (0 = fully
	// sequential, the Cfg.RecoveryWorkers <= 1 path).
	Workers int
	// ParPhases records, for each phase that actually fanned out, the
	// worker count used and the host wall-clock time spent. Empty on
	// sequential runs.
	ParPhases []ParPhase
	// Prof is the profiler's view of this recovery — per-phase worker cost
	// attribution and per-stripe contention deltas across the Recover call.
	// Nil unless a profiler is attached (AttachProf).
	Prof *RecoveryProfile
}

// RecoveryProfile is the delta of the attached profiler's counters across one
// Recover call: what the parallel pipeline's workers did (busy/wait/tasks/
// records/bytes per phase) and what the machine's stripes saw (acquisitions,
// contention, condvar sleeps) while recovery ran.
type RecoveryProfile struct {
	Workers prof.WorkerSnapshot
	Stripes prof.StripeSnapshot
}

// PhaseTime returns the simulated duration spent in phase p (0 if the phase
// did not run).
func (r *RecoveryReport) PhaseTime(p obs.Phase) int64 {
	var total int64
	for _, s := range r.Phases {
		if s.Phase == p {
			total += s.Dur
		}
	}
	return total
}

// Crash fails the given nodes: their caches are destroyed (machine), their
// volatile log tails are lost (wal), and their entries leave the shared
// WAL-enforcement table (buffer). Active transactions on those nodes become
// crash victims awaiting recovery. The DB-layer destruction happens inside
// the machine's crash-notify callback (noteCrash), so injected crashes fired
// mid-coherency-transition get exactly the same treatment.
func (db *DB) Crash(nodes ...machine.NodeID) machine.CrashReport {
	return db.M.Crash(nodes...)
}

// Recover runs restart recovery after Crash(crashed...). It must be called
// from a surviving configuration (at least one live node).
//
// Recovery is itself crash-tolerant: if a node — including the recovery
// coordinator — dies while recovery runs, Recover elects a new coordinator
// from the survivors, folds the fresh victims into the crashed set, and
// re-enters from the top. Every recovery pass is idempotent (version-checked
// redo, tombstone LCB reinstalls, duplicate-free lock replay, status-guarded
// settling), so re-entry repeats no effect; the attempt budget is bounded
// because each re-entry consumes at least one real node crash and the
// machine runs out of nodes to lose.
func (db *DB) Recover(crashed []machine.NodeID) (*RecoveryReport, error) {
	alive := db.M.AliveNodes()
	if len(alive) == 0 {
		return nil, fmt.Errorf("recovery: no surviving nodes")
	}
	defer db.frozen.Store(false)
	// Restart recovery is the one actor allowed through the freeze-window
	// install gate (see New): open it for the duration of the call.
	db.recovering.Store(true)
	defer db.recovering.Store(false)
	rep := &RecoveryReport{Protocol: db.Cfg.Protocol, Crashed: mergeNodes(crashed, nil), Workers: db.parWorkers()}
	recovered := false
	// The debt tracker snapshots the outstanding replay debt its estimate
	// is judged against, and the closing sample — registered before the
	// profiler span's defer so it runs after rep.Prof is final — feeds MTTR
	// accounting and estimator calibration.
	if dbt := db.Debt(); dbt != nil {
		dbt.RecoveryStart(len(rep.Crashed))
		defer func() {
			var busy int64
			if rep.Prof != nil {
				for _, ph := range rep.Prof.Workers.Phases {
					busy += ph.BusyNS()
				}
			}
			replayed := int64(rep.RedoApplied + rep.RedoSkipped + rep.UndoApplied)
			dbt.RecoveryEnd(recovered, replayed, busy, rep.Workers, rep.SimTime)
		}()
	}
	// The profiler span covers the whole call, every early return included,
	// so rep.Prof is the exact counter delta attributable to this recovery.
	defer db.startProfSpan(rep)()
	// The live progress observer (/recovery/progress) opens here and closes on
	// every exit, reporting success only for the normal returns.
	pg := db.wfProgress()
	pg.Start(len(rep.Crashed))
	defer func() { pg.End(recovered) }()
	startClock := db.M.MaxClock()
	o := db.Observer()

	// A crash left a flight-recorder dump pending (noteCrash runs under the
	// machine lock and may not touch files); write the post-mortem now,
	// before recovery mutates the crash-instant state. Best effort: a dump
	// I/O failure must not block recovery.
	if db.flightPending.Swap(false) {
		_, _ = db.DumpFlight("crash")
	}

	// The freeze span covers crash-to-recovery-start: transactions that hit
	// the failed domain stall while the system decides to recover.
	if cs := db.crashSim.Swap(0); cs > 0 && cs <= startClock {
		rep.Phases = append(rep.Phases, obs.PhaseSpan{Phase: obs.PhaseFreeze, Start: cs, Dur: startClock - cs})
		o.Span(obs.KindPhase, obs.PhaseFreeze, obs.SystemNode, cs, startClock-cs)
	}

	// Workload-time faults (migration/update crashes, torn forces) stay
	// quiet while recovery runs; in-recovery crashes and transient I/O
	// errors remain live — they are precisely what this loop survives.
	if inj := db.injector(); inj != nil {
		inj.BeginRecovery()
		defer inj.EndRecovery()
	}

	if db.Cfg.Protocol == BaselineFA {
		rep.Attempts = 1
		pg.Attempt(1)
		phase := db.phaseTracker(rep, o)
		if err := db.baselineReboot(rep, phase); err != nil {
			return nil, err
		}
		db.crashSim.Store(0) // baselineReboot crashes the rest internally
		if db.flightPending.Swap(false) {
			_, _ = db.DumpFlight("crash")
		}
		rep.SimTime = db.M.MaxClock() - startClock
		o.Span(obs.KindRecovery, obs.PhaseNone, obs.SystemNode, startClock, rep.SimTime)
		db.noteRecovered(rep)
		recovered = true
		return rep, nil
	}

	maxAttempts := db.M.Nodes() + 3
	lastCoord := machine.NoNode
	for {
		alive = db.M.AliveNodes()
		if len(alive) == 0 {
			return nil, fmt.Errorf("recovery: no surviving nodes")
		}
		if lastCoord != machine.NoNode && alive[0] != lastCoord {
			rep.CoordinatorFailovers++
		}
		lastCoord = alive[0]
		rep.Attempts++
		pg.Attempt(rep.Attempts)
		err := db.recoverOnce(alive, rep)
		if err == nil {
			break
		}
		if rep.Attempts >= maxAttempts || !recoverableErr(err) {
			return nil, err
		}
		// A node died under recovery's feet; fold the new victims into the
		// reported crash set and re-enter with a fresh coordinator.
		rep.Crashed = mergeNodes(rep.Crashed, db.downNodes())
		if db.flightPending.Swap(false) {
			_, _ = db.DumpFlight("crash-in-recovery")
		}
	}
	sortTxns(rep.Aborted)
	db.bump(func(s *Stats) {
		s.RedoApplied += int64(rep.RedoApplied)
		s.RedoSkipped += int64(rep.RedoSkipped)
		s.UndoApplied += int64(rep.UndoApplied)
		s.LCBsRebuilt += int64(rep.LCBsReinstalled)
		s.LockEntriesReleased += int64(rep.LockEntriesReleased)
	})
	db.crashSim.Store(0) // mid-recovery crashes were handled in-line
	rep.SimTime = db.M.MaxClock() - startClock
	o.Span(obs.KindRecovery, obs.PhaseNone, obs.SystemNode, startClock, rep.SimTime)
	db.noteRecovered(rep)
	recovered = true
	return rep, nil
}

// startProfSpan snapshots the attached profiler at Recover entry and returns
// a closure storing the end-minus-start delta in rep.Prof. With no profiler
// attached both halves are no-ops.
func (db *DB) startProfSpan(rep *RecoveryReport) func() {
	p := db.Prof()
	if p == nil {
		return func() {}
	}
	w0 := p.Workers.Snapshot()
	s0 := p.Stripes.Snapshot()
	return func() {
		rep.Prof = &RecoveryProfile{
			Workers: p.Workers.Snapshot().Sub(w0),
			Stripes: p.Stripes.Snapshot().Sub(s0),
		}
	}
}

// noteRecovered tells the dependency tracker and the online auditor which
// crash victims recovery aborted (the rest settled as stable-committed),
// closing the crash episode in both.
func (db *DB) noteRecovered(rep *RecoveryReport) {
	dt := db.Deps()
	au := db.Audit()
	if dt == nil && au == nil {
		return
	}
	aborted := make([]int64, len(rep.Aborted))
	for i, t := range rep.Aborted {
		aborted[i] = int64(t)
	}
	dt.NoteRecovered(aborted)
	au.NoteRecovered(aborted, db.M.MaxClock())
}

// recoverOnce is one attempt at the IFA restart-recovery sequence. Counters
// accumulate into rep across attempts (each pass is idempotent, so repeated
// work is skipped, not recounted). At every phase boundary the fault
// injector may crash a node, in which case recoverOnce stops immediately
// with ErrRecoveryInterrupted and Recover re-enters.
func (db *DB) recoverOnce(alive []machine.NodeID, rep *RecoveryReport) error {
	coord := alive[0]
	o := db.Observer()
	phase := db.phaseTracker(rep, o)
	// step closes the phase span, then gives the injector its shot at
	// crashing a node (possibly coord) at exactly this boundary.
	step := func(p obs.Phase) error {
		phase(p)
		return db.faultAtPhase(p)
	}

	// 1. Lock space (section 4.2.2): reinstall destroyed LCB lines as
	// tombstones, release every crashed transaction's entries from
	// surviving LCBs, and rebuild lost lock state by replaying the
	// survivors' logical lock logs for still-active transactions.
	n, err := db.Locks.ReinstallLost(coord)
	if err != nil {
		return err
	}
	rep.LCBsReinstalled += n
	dropped, orphans, err := db.Locks.SweepBrokenChains(coord)
	if err != nil {
		return err
	}
	rep.LCBChainsDropped += dropped + orphans
	if err := step(obs.PhaseDirectoryRepair); err != nil {
		return err
	}
	// Release every down node's transactions — the original victims plus
	// any node lost during an earlier recovery attempt.
	released, err := db.Locks.ReleaseCrashed(coord, db.downNodes())
	if err != nil {
		return err
	}
	rep.LockEntriesReleased += released
	replayed, err := db.replaySurvivorLocks(alive, rep)
	if err != nil {
		return err
	}
	rep.LocksReplayed += replayed
	if err := step(obs.PhaseLockRebuild); err != nil {
		return err
	}

	// 2. Redo (section 4.1.2), in three phases: scan the available logs for
	// redo candidates, probe residency (reinstalling lost lines from the
	// stable database), then apply version-checked redo.
	if !db.Cfg.Protocol.SelectiveRedo() {
		// Redo All, step 1: every surviving node discards its cached
		// database lines, wiping any migrated uncommitted updates of
		// crashed transactions (and, collaterally, everything else in
		// memory).
		db.flushAllCaches(alive, rep)
	}
	cands, err := db.collectRedo(alive, rep)
	if err != nil {
		return err
	}
	// The candidate count is the known total for the probe and apply phases:
	// from here /recovery/progress can report an ETA.
	db.wfProgress().Plan(obs.PhaseProbe.String(), len(cands))
	db.wfProgress().Plan(obs.PhaseRedoApply.String(), len(cands))
	if err := step(obs.PhaseRedoScan); err != nil {
		return err
	}
	if err := db.probeRedo(cands, rep); err != nil {
		return err
	}
	if err := step(obs.PhaseProbe); err != nil {
		return err
	}
	if err := db.applyRedo(cands, rep); err != nil {
		return err
	}
	if err := step(obs.PhaseRedoApply); err != nil {
		return err
	}

	// 3. Undo: down nodes' active transactions. Stolen or stably logged
	// updates are undone from the stable logs; under undo tagging, updates
	// that migrated into surviving caches are found by the sequential
	// cache-line scan and reverted to their last committed values. The
	// pass covers *every* down node, not just this crash's set: a redo
	// from the stable database can resurrect a stolen update of a
	// transaction that died in an earlier failure, and it must be undone
	// again (the version filter makes repetition harmless).
	down := db.downNodes()
	aborted, err := db.undoCrashed(coord, down, rep)
	if err != nil {
		return err
	}
	if err := step(obs.PhaseUndo); err != nil {
		return err
	}
	if db.Cfg.Protocol.UndoTagging() {
		if err := db.undoTagScan(alive, down, rep); err != nil {
			return err
		}
		if err := step(obs.PhaseUndoTagScan); err != nil {
			return err
		}
	}

	// Make the repairs durable: the undo passes' compensation records so
	// far live only in the coordinator's volatile log. If that node later
	// crashes before the repaired pages are flushed, a fetch from the
	// stable database would re-instate the very image a compensation
	// record reverted — with no stable record left to redo the repair. One
	// force per surviving log closes the window.
	for _, n := range db.M.AliveNodes() {
		if _, forced := db.Logs[n].ForceAll(); forced {
			cost := db.logForceCost()
			db.M.AdvanceClock(n, cost)
			db.Observer().ObserveLogForce(cost)
		}
	}

	// 4. Settle the victims. A transaction whose node crashed after its
	// commit record reached stable store *is* committed — the crash
	// merely ate the acknowledgement — and the redo pass has already
	// repeated its effects; everyone else is aborted.
	stableCommitted := make(map[wal.TxnID]bool)
	for _, n := range db.downNodes() {
		v, err := db.view(n, true)
		if err != nil {
			return err
		}
		for t := range v.committed {
			stableCommitted[t] = true
		}
	}
	db.mu.Lock()
	for _, st := range db.txns {
		if st.status != TxnActive || !st.crashed {
			continue
		}
		if stableCommitted[st.id] {
			st.status = TxnCommitted
			db.stats.Commits++
			for _, w := range st.writes {
				if ci, ok := db.committed[w.rid]; !ok || w.version > ci.version {
					db.committed[w.rid] = committedImage{img: w.img, version: w.version}
				}
			}
			continue
		}
		st.status = TxnAborted
		db.stats.Aborts++
		db.stats.TxnsAbortedByRecovery++
		rep.Aborted = append(rep.Aborted, st.id)
	}
	db.mu.Unlock()
	_ = aborted

	// 5. Parallel transactions (section 9): a crashed branch dooms its
	// whole family; surviving branches are rolled back from their own
	// logs.
	if _, err := db.abortOrphanedBranches(rep); err != nil {
		return err
	}
	return step(obs.PhaseSettle)
}

// mergeNodes unions two node lists into a sorted, duplicate-free list.
func mergeNodes(a, b []machine.NodeID) []machine.NodeID {
	seen := make(map[machine.NodeID]bool, len(a)+len(b))
	out := make([]machine.NodeID, 0, len(a)+len(b))
	for _, n := range a {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, n := range b {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// phaseTracker returns a closure that, on each call, closes the current
// recovery phase: the span from the previous call (or tracker creation) to
// now is appended to the report and mirrored to the observer. Phase time is
// measured on the simulated clock (MaxClock deltas), matching SimTime.
func (db *DB) phaseTracker(rep *RecoveryReport, o *obs.Observer) func(obs.Phase) {
	start := db.M.MaxClock()
	pg := db.wfProgress()
	return func(p obs.Phase) {
		now := db.M.MaxClock()
		rep.Phases = append(rep.Phases, obs.PhaseSpan{Phase: p, Start: start, Dur: now - start})
		o.Span(obs.KindPhase, p, obs.SystemNode, start, now-start)
		pg.PhaseDone(p.String(), now-start)
		start = now
	}
}

// downNodes returns every node currently down.
func (db *DB) downNodes() []machine.NodeID {
	var out []machine.NodeID
	for n := machine.NodeID(0); int(n) < db.M.Nodes(); n++ {
		if !db.M.Alive(n) {
			out = append(out, n)
		}
	}
	return out
}

// flushAllCaches discards every cached heap line on every surviving node
// (Redo All step 1; the lock table is managed separately). Each node's flush
// is one DiscardAll sweep — a stripe-at-a-time batch instead of a lock
// round-trip per line.
func (db *DB) flushAllCaches(alive []machine.NodeID, rep *RecoveryReport) {
	if w := db.parWorkers(); w > 1 {
		db.flushAllCachesPar(alive, rep, w)
		return
	}
	for _, nd := range alive {
		db.M.DiscardAll(nd, db.Store.Contains)
	}
}

// logView is the recovery-visible portion of one node's log. Survivor views
// wrap the live log and iterate it in place under the log mutex (no record
// copying); crashed-node views hold the decoded stable prefix — the volatile
// tail died with the node.
type logView struct {
	node   machine.NodeID
	live   *wal.Log     // survivors: scanned in place (nil for crashed views)
	stable []wal.Record // crashed nodes: decoded stable prefix
	// ckptLSN is the LSN just past the last visible checkpoint record (1 if
	// none), the redo scan's starting point.
	ckptLSN   wal.LSN
	committed map[wal.TxnID]bool
	aborted   map[wal.TxnID]bool
	ntaDone   map[uint64]bool
}

// scanFrom calls fn for every visible record with LSN >= from, in LSN order,
// stopping early if fn returns false. Survivor views run fn under the live
// log's mutex: fn must not call back into that log (appending from inside the
// scan would self-deadlock).
func (v *logView) scanFrom(from wal.LSN, fn func(wal.Record) bool) {
	if v.live != nil {
		v.live.Scan(from, fn)
		return
	}
	for _, r := range v.stable {
		if r.LSN < from {
			continue
		}
		if !fn(r) {
			return
		}
	}
}

// scan visits every visible record (see scanFrom).
func (v *logView) scan(fn func(wal.Record) bool) { v.scanFrom(1, fn) }

// scanFromCkpt visits the records after the last visible checkpoint.
func (v *logView) scanFromCkpt(fn func(wal.Record) bool) { v.scanFrom(v.ckptLSN, fn) }

// view builds the recovery-visible log view of node n: survivors expose
// their full logs (their memory survived); crashed nodes only their stable
// prefixes.
func (db *DB) view(n machine.NodeID, isCrashed bool) (*logView, error) {
	v := &logView{
		node:      n,
		ckptLSN:   1,
		committed: make(map[wal.TxnID]bool),
		aborted:   make(map[wal.TxnID]bool),
		ntaDone:   make(map[uint64]bool),
	}
	if isCrashed {
		recs, err := db.Logs[n].StableRecords()
		if err != nil {
			return nil, err
		}
		v.stable = recs
	} else {
		v.live = db.Logs[n]
	}
	v.scan(func(r wal.Record) bool {
		switch r.Type {
		case wal.TypeCommit:
			v.committed[r.Txn] = true
		case wal.TypeAbort:
			v.aborted[r.Txn] = true
		case wal.TypeNTAEnd:
			v.ntaDone[r.NTA] = true
		case wal.TypeCheckpoint:
			v.ckptLSN = r.LSN + 1
		}
		return true
	})
	return v, nil
}

// txnDead reports whether t is known to the engine as aborted — including
// settled as aborted by a previous restart recovery after its node crashed.
// Such a transaction's updates must never be replayed from a log.
func (db *DB) txnDead(t wal.TxnID) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	st, ok := db.txns[t]
	if !ok {
		return false
	}
	return st.status == TxnAborted || (st.crashed && st.status != TxnCommitted)
}

// redoCand is one redo candidate produced by the scan phase: a log record
// whose effect may be missing, plus the node that will replay it.
type redoCand struct {
	onto machine.NodeID
	rec  wal.Record
}

// collectRedo is the redo scan phase: it gathers redo candidates from every
// node's available log. Surviving nodes replay their own full logs from
// their last checkpoints (everything: committed, active, and compensation
// records — surviving active transactions' updates are preserved under IFA).
// Down nodes — whether they crashed just now or in an earlier failure —
// contribute their stable prefixes only, filtered to logically committed
// effects (stable commits, completed structural changes, compensations);
// their uncommitted updates are not repeated, as they are about to be undone
// anyway. Version comparison in the apply phase makes redo idempotent and
// order-independent across logs.
func (db *DB) collectRedo(alive []machine.NodeID, rep *RecoveryReport) ([]redoCand, error) {
	if w := db.parWorkers(); w > 1 {
		return db.collectRedoPar(alive, rep, w)
	}
	coord := alive[0]
	var cands []redoCand
	for n := machine.NodeID(0); int(n) < db.M.Nodes(); n++ {
		part, err := db.collectRedoNode(n, coord, db.arena(0))
		if err != nil {
			return nil, err
		}
		cands = append(cands, part...)
	}
	return cands, nil
}

// collectRedoNode gathers one node's redo candidates (the per-log unit the
// parallel scan fans out over; candidates come back in log order). ar
// provides the reusable dead-check scratch buffer.
func (db *DB) collectRedoNode(n, coord machine.NodeID, ar *recArena) ([]redoCand, error) {
	isDown := !db.M.Alive(n)
	v, err := db.view(n, isDown)
	if err != nil {
		return nil, err
	}
	onto := n
	if isDown {
		onto = coord
	}
	var cands []redoCand
	// Survivor-log updates of uncommitted transactions need a txnDead check,
	// which takes db.mu. That must not happen inside a live-log scan
	// (Checkpoint holds db.mu while calling into the log, so a scan callback
	// taking db.mu inverts the order); collect the candidate positions here
	// and filter after the scan releases the log mutex.
	deadChecks := ar.deadChecks[:0]
	v.scanFromCkpt(func(rec wal.Record) bool {
		if rec.Type != wal.TypeUpdate && rec.Type != wal.TypeCLR {
			return true
		}
		if isDown {
			switch {
			case rec.Type == wal.TypeCLR:
			case rec.NTA != 0 && v.ntaDone[rec.NTA]:
			case v.committed[rec.Txn]:
			default:
				return true
			}
		} else if rec.Type == wal.TypeUpdate && rec.NTA == 0 && !v.committed[rec.Txn] {
			deadChecks = append(deadChecks, len(cands))
		}
		cands = append(cands, redoCand{onto: onto, rec: rec})
		return true
	})
	db.wfProgress().Note(obs.PhaseRedoScan.String(), len(cands), 0)
	ar.deadChecks = deadChecks // keep the grown buffer for the next node
	if len(deadChecks) > 0 {
		// A restarted node's log can still carry updates of a transaction
		// that died with an earlier crash. If that crash also destroyed the
		// only copy of the effect, no compensation record was ever written —
		// the undo was skipped as moot — so replaying the update here would
		// resurrect it, and the undo pass (which covers only the
		// currently-down nodes) would never see it again.
		drop := make(map[int]bool)
		for _, i := range deadChecks {
			if db.txnDead(cands[i].rec.Txn) {
				drop[i] = true
			}
		}
		if len(drop) > 0 {
			kept := cands[:0]
			for i, c := range cands {
				if !drop[i] {
					kept = append(kept, c)
				}
			}
			cands = kept
		}
	}
	return cands, nil
}

// probeRedo is the residency probe phase (the "cache miss with I/O disabled"
// test of Selective Redo): each candidate's lines are checked for survival
// in some cache; pages with lost lines are reinstalled from the stable
// database up front, so the apply phase mostly hits warm lines. The apply
// path re-checks residency, so the probe is an acceleration, not a
// correctness requirement.
func (db *DB) probeRedo(cands []redoCand, rep *RecoveryReport) error {
	if w := db.parWorkers(); w > 1 {
		return db.probeRedoPar(cands, rep, w)
	}
	return db.probeRedoSlice(cands)
}

// probeRedoSlice probes one run of candidates (the whole list sequentially;
// one page's bucket under the parallel pipeline).
func (db *DB) probeRedoSlice(cands []redoCand) error {
	pg := db.wfProgress()
	for _, c := range cands {
		rid := heap.RID{Page: c.rec.Page, Slot: c.rec.Slot}
		line, _, err := db.Store.LineOf(rid)
		if err != nil {
			return err
		}
		if !db.M.Resident(line) || !db.M.Resident(db.Store.HeaderLine(rid.Page)) {
			if err := db.BM.Fetch(c.onto, rid.Page); err != nil {
				return err
			}
		}
		pg.Note(obs.PhaseProbe.String(), 1, 0)
	}
	return nil
}

// applyRedo is the redo apply phase: version-checked, idempotent replay of
// the candidate list, batched into same-line runs (see redobatch.go). The
// parallel path partitions candidates by page — same-page candidates keep
// their list order (same-slot version decisions depend only on same-slot
// order, and a slot lives on exactly one page), cross-page order is free
// because redo is per-object idempotent — so the Redo counters and final
// images are identical at every worker count.
func (db *DB) applyRedo(cands []redoCand, rep *RecoveryReport) error {
	if w := db.parWorkers(); w > 1 {
		return db.applyRedoPar(cands, rep, w)
	}
	return db.applyRedoSlice(cands, rep, db.arena(0))
}

// redoLog replays one log view's post-checkpoint records on behalf of node
// onto (the log owner itself for survivors; the coordinator for crashed
// nodes).
func (db *DB) redoLog(onto machine.NodeID, v *logView, isCrashed bool, rep *RecoveryReport) error {
	var redoErr error
	v.scanFromCkpt(func(rec wal.Record) bool {
		if rec.Type != wal.TypeUpdate && rec.Type != wal.TypeCLR {
			return true
		}
		if isCrashed {
			// Only effects that are logically committed are repeated
			// from a dead node's log.
			switch {
			case rec.Type == wal.TypeCLR:
			case rec.NTA != 0 && v.ntaDone[rec.NTA]:
			case v.committed[rec.Txn]:
			default:
				return true
			}
		}
		rid := heap.RID{Page: rec.Page, Slot: rec.Slot}
		if err := db.redoRecord(onto, rec, rid, rep); err != nil {
			redoErr = err
			return false
		}
		return true
	})
	return redoErr
}

// redoRecord applies one update/CLR record if its effect is missing.
func (db *DB) redoRecord(nd machine.NodeID, rec wal.Record, rid heap.RID, rep *RecoveryReport) error {
	line, _, err := db.Store.LineOf(rid)
	if err != nil {
		return err
	}
	// Selective Redo's residency probe (the "cache miss with I/O disabled"
	// test): if the line survives in some cache, the update may be there
	// already; the version check below confirms. If the line was lost, the
	// page fetch reinstalls exactly the missing lines from the stable
	// database first.
	if !db.M.Resident(line) || !db.M.Resident(db.Store.HeaderLine(rid.Page)) {
		if err := db.BM.Fetch(nd, rid.Page); err != nil {
			return err
		}
	}
	cur, err := db.Store.ReadSlot(nd, rid)
	if err != nil {
		return err
	}
	if cur.Version >= rec.Version {
		rep.RedoSkipped++
		// A skip still consumes one planned candidate: progress records count
		// toward the Plan() total either way, keeping the ETA honest.
		db.wfProgress().Note(obs.PhaseRedoApply.String(), 1, 0)
		return nil
	}
	flags, data := splitImage(rec.After)
	tag := machine.NoNode
	if db.Cfg.Protocol.UndoTagging() && rec.Type == wal.TypeUpdate && rec.NTA == 0 {
		// Restore the undo tag if the updating transaction is still
		// active on a surviving node (its update stays uncommitted).
		db.mu.Lock()
		if st, ok := db.txns[rec.Txn]; ok && st.status == TxnActive && !st.crashed {
			tag = rec.Txn.Node()
		}
		db.mu.Unlock()
	}
	if err := db.M.GetLine(nd, line); err != nil {
		return err
	}
	err = db.Store.WriteSlot(nd, rid, heap.SlotData{Tag: tag, Flags: flags, Version: rec.Version, Data: data})
	db.mustRelease(nd, line)
	if err != nil {
		return err
	}
	db.BM.MarkDirty(rid.Page)
	rep.RedoApplied++
	db.wfProgress().Note(obs.PhaseRedoApply.String(), 1, len(rec.After))
	return nil
}

// undoCrashed rolls back the crashed nodes' active transactions using their
// stable logs: every update whose effect is still present is reverted to
// the transaction's earliest before image for that slot (the last committed
// value, by strict 2PL). Incomplete structural changes (an NTA with no
// stable end record) are undone too. Returns the crashed-active set found.
func (db *DB) undoCrashed(coord machine.NodeID, crashed []machine.NodeID, rep *RecoveryReport) (map[wal.TxnID]bool, error) {
	found := make(map[wal.TxnID]bool)
	for _, n := range crashed {
		v, err := db.view(n, true)
		if err != nil {
			return nil, err
		}
		// Active on the crashed node = stable records, no stable
		// commit/abort.
		type slotUndo struct {
			earliest []byte // before image of the earliest update
			versions map[uint64]bool
		}
		undoByTxn := make(map[wal.TxnID]map[heap.RID]*slotUndo)
		v.scan(func(rec wal.Record) bool {
			if rec.Type != wal.TypeUpdate {
				return true
			}
			if v.committed[rec.Txn] || v.aborted[rec.Txn] {
				return true
			}
			if rec.NTA != 0 && v.ntaDone[rec.NTA] {
				return true // early-committed structural change: keep
			}
			found[rec.Txn] = true
			m := undoByTxn[rec.Txn]
			if m == nil {
				m = make(map[heap.RID]*slotUndo)
				undoByTxn[rec.Txn] = m
			}
			rid := heap.RID{Page: rec.Page, Slot: rec.Slot}
			su := m[rid]
			if su == nil {
				// First (earliest) update of this slot by this txn:
				// its before image is the last committed value.
				su = &slotUndo{earliest: rec.Before, versions: make(map[uint64]bool)}
				m[rid] = su
			}
			su.versions[rec.Version] = true
			return true
		})
		// Install in sorted (txn, rid) order: each installImage draws a
		// fresh global version for its compensation record, so map-order
		// iteration would assign versions to slots differently run to run
		// and break chaos replay's image comparison.
		txns := make([]wal.TxnID, 0, len(undoByTxn))
		for txn := range undoByTxn {
			txns = append(txns, txn)
		}
		sortTxns(txns)
		for _, txn := range txns {
			m := undoByTxn[txn]
			rids := make([]heap.RID, 0, len(m))
			for rid := range m {
				rids = append(rids, rid)
			}
			sort.Slice(rids, func(i, j int) bool {
				if rids[i].Page != rids[j].Page {
					return rids[i].Page < rids[j].Page
				}
				return rids[i].Slot < rids[j].Slot
			})
			for _, rid := range rids {
				su := m[rid]
				cur, err := db.Read(coord, rid)
				if err != nil {
					return nil, err
				}
				if !su.versions[cur.Version] {
					// The transaction's update is not present (it was
					// lost with the crash, or never migrated and died
					// in place); the stable database already holds an
					// older value.
					continue
				}
				if err := db.installImage(coord, rid, su.earliest, txn); err != nil {
					return nil, err
				}
				rep.UndoApplied++
				db.wfProgress().Note(obs.PhaseUndo.String(), 1, len(su.earliest))
			}
		}
	}
	return found, nil
}

// undoTagScan is the Selective Redo undo phase: every surviving node
// sequentially scans its cached lines; any record tagged with a crashed
// node's ID is an uncommitted update of a dead transaction that migrated
// here, and is reverted to its last committed value taken from stable
// store (a committed update record in an available log, or failing that the
// stable database image).
//
// The scan also reconciles stale tags pointing at *surviving* nodes. A tag
// is not versioned: a page stolen to disk while a record was active carries
// the tag, and if the record's line later dies and is reinstalled from that
// disk image after the tagging transaction committed, the stale tag
// resurfaces. A tag naming live node n is legitimate only if n's log — which
// survived intact — contains an update record for exactly this slot and
// version belonging to a transaction that is still active; otherwise the
// record is no longer active and the tag is nulled.
func (db *DB) undoTagScan(alive, crashed []machine.NodeID, rep *RecoveryReport) error {
	if w := db.parWorkers(); w > 1 {
		return db.undoTagScanPar(alive, crashed, rep, w)
	}
	down := nodeSet(crashed)
	// Per-surviving-node index, built lazily on the first surviving tag that
	// names the node: (rid, version) -> updating transaction.
	taggers := make(map[machine.NodeID]map[slotVer]wal.TxnID, len(alive))
	taggerIndex := func(n machine.NodeID) map[slotVer]wal.TxnID {
		if m, ok := taggers[n]; ok {
			return m
		}
		m := db.buildTaggerIndex(n)
		taggers[n] = m
		return m
	}
	// Node at a time: scan the node's cached lines (read-only), then apply
	// its actions before the next node's scan. An applied undo migrates the
	// line exclusively to the fixer, so later nodes' CachedLines snapshots no
	// longer include it — each rid is repaired exactly once.
	for _, nd := range alive {
		acts, lines, err := db.scanNodeTags(nd, down, taggerIndex)
		if err != nil {
			return err
		}
		rep.TagScanLines += lines
		if err := db.applyTagActions(acts, crashed, rep); err != nil {
			return err
		}
	}
	return nil
}

// nodeSet builds a membership set from a node list.
func nodeSet(nodes []machine.NodeID) map[machine.NodeID]bool {
	s := make(map[machine.NodeID]bool, len(nodes))
	for _, n := range nodes {
		s[n] = true
	}
	return s
}

// slotVer keys a tagger index: one logged update version of one slot.
type slotVer struct {
	rid heap.RID
	ver uint64
}

// buildTaggerIndex indexes node n's log by (rid, version) -> updating
// transaction, for stale-tag verification. The log is iterated in place
// (wal.Log.Scan); the callback only fills the map, so it is safe under the
// log mutex.
func (db *DB) buildTaggerIndex(n machine.NodeID) map[slotVer]wal.TxnID {
	m := make(map[slotVer]wal.TxnID)
	db.Logs[n].Scan(1, func(rec wal.Record) bool {
		if rec.Type == wal.TypeUpdate && rec.NTA == 0 {
			m[slotVer{heap.RID{Page: rec.Page, Slot: rec.Slot}, rec.Version}] = rec.Txn
		}
		return true
	})
	return m
}

// tagAction is one repair decision produced by a tag scan: either an undo of
// a dead transaction's migrated update (undo=true; tag is the crashed node
// the record's tag named) or a stale-tag clear (undo=false).
type tagAction struct {
	nd   machine.NodeID // the scanning node, which performs the repair
	rid  heap.RID
	tag  machine.NodeID
	undo bool
}

// scanNodeTags scans nd's cached database lines read-only and returns the
// repair actions they call for, plus the number of lines examined. All
// coherency traffic is read hits on lines nd already caches, so concurrent
// scans of different nodes do not disturb each other's residency.
func (db *DB) scanNodeTags(nd machine.NodeID, down map[machine.NodeID]bool, taggerIndex func(machine.NodeID) map[slotVer]wal.TxnID) ([]tagAction, int, error) {
	var acts []tagAction
	lines := 0
	for _, l := range db.M.CachedLines(nd) {
		p, firstSlot, ok := db.Store.SlotOfLine(l)
		if !ok {
			continue
		}
		lines++
		for i := 0; i < db.Store.Layout.RecsPerLine; i++ {
			rid := heap.RID{Page: p, Slot: uint16(firstSlot + i)}
			sd, err := db.Store.ReadSlot(nd, rid)
			if err != nil {
				return nil, lines, err
			}
			switch {
			case sd.Tag == machine.NoNode:
			case down[sd.Tag]:
				acts = append(acts, tagAction{nd: nd, rid: rid, tag: sd.Tag, undo: true})
			default:
				// Tag names a surviving node: verify against its log.
				legit := false
				if txn, ok := taggerIndex(sd.Tag)[slotVer{rid, sd.Version}]; ok {
					db.mu.Lock()
					if st, known := db.txns[txn]; known && st.status == TxnActive && !st.crashed {
						legit = true
					}
					db.mu.Unlock()
				}
				if !legit {
					acts = append(acts, tagAction{nd: nd, rid: rid, tag: sd.Tag})
				}
			}
		}
	}
	db.wfProgress().Note(obs.PhaseUndoTagScan.String(), lines, 0)
	return acts, lines, nil
}

// applyTagActions performs the repairs a tag scan decided on.
func (db *DB) applyTagActions(acts []tagAction, crashed []machine.NodeID, rep *RecoveryReport) error {
	for _, a := range acts {
		if !a.undo {
			if err := db.clearStaleTag(a.nd, a.rid); err != nil {
				return err
			}
			continue
		}
		img, err := db.lastCommittedFromStable(a.nd, a.rid, crashed)
		if err != nil {
			return err
		}
		if err := db.installImage(a.nd, a.rid, img, wal.MakeTxnID(a.tag, 0)); err != nil {
			return err
		}
		rep.UndoApplied++
	}
	return nil
}

// clearStaleTag nulls rid's undo tag under a line lock.
func (db *DB) clearStaleTag(nd machine.NodeID, rid heap.RID) error {
	line, _, err := db.Store.LineOf(rid)
	if err != nil {
		return err
	}
	if err := db.M.GetLine(nd, line); err != nil {
		return err
	}
	defer db.mustRelease(nd, line)
	return db.Store.WriteTag(nd, rid, machine.NoNode)
}

// lastCommittedFromStable derives rid's last committed image without any
// crashed node's volatile state: the newest update/CLR for rid that belongs
// to a committed transaction (or is itself a compensation or committed
// structural record) in any available log; if none is found, the stable
// database's image.
func (db *DB) lastCommittedFromStable(nd machine.NodeID, rid heap.RID, crashed []machine.NodeID) ([]byte, error) {
	_ = crashed
	var best []byte
	var bestVersion uint64
	for n := machine.NodeID(0); int(n) < len(db.Logs); n++ {
		v, err := db.view(n, !db.M.Alive(n))
		if err != nil {
			return nil, err
		}
		v.scan(func(rec wal.Record) bool {
			if rec.Page != rid.Page || rec.Slot != rid.Slot {
				return true
			}
			committedEffect := false
			switch {
			case rec.Type == wal.TypeCLR:
				committedEffect = true
			case rec.Type != wal.TypeUpdate:
				return true
			case rec.NTA != 0 && v.ntaDone[rec.NTA]:
				committedEffect = true
			case v.committed[rec.Txn]:
				committedEffect = true
			}
			if committedEffect && rec.Version > bestVersion {
				bestVersion = rec.Version
				best = rec.After
			}
			return true
		})
	}
	if best != nil {
		return best, nil
	}
	// Fall back to the stable database image (retrying transient injected
	// I/O errors — recovery must outlast a flaky disk).
	if db.Disk.Exists(rid.Page) {
		img, err := db.readPageRetry(nd, rid.Page)
		if err != nil {
			return nil, err
		}
		db.M.AdvanceClock(nd, db.M.Config().Cost.DiskRead)
		layout := db.Store.Layout
		lineInPage := 1 + int(rid.Slot)/layout.RecsPerLine
		lineImg := img[lineInPage*layout.LineSize : (lineInPage+1)*layout.LineSize]
		sd := heap.DecodeSlotFromLine(layout, lineImg, int(rid.Slot)%layout.RecsPerLine)
		return SlotImage(layout, sd.Flags, sd.Data), nil
	}
	// Never committed, never flushed: the record's pre-existence image is
	// the empty slot.
	return SlotImage(db.Store.Layout, 0, nil), nil
}

// replaySurvivorLocks re-requests, for every surviving active transaction,
// the locks its node's log records as acquired and not released. Acquire is
// idempotent (a present holder or waiter entry is not duplicated), so
// surviving LCBs are unaffected while destroyed ones are rebuilt — with
// read locks included, which is why IFA logs them.
func (db *DB) replaySurvivorLocks(alive []machine.NodeID, rep *RecoveryReport) (int, error) {
	db.Locks.SetLogSuppressed(true)
	defer db.Locks.SetLogSuppressed(false)
	if w := db.parWorkers(); w > 1 {
		return db.replaySurvivorLocksPar(alive, rep, w)
	}
	replayed := 0
	for _, n := range alive {
		nr, err := db.replayNodeLocks(n)
		replayed += nr
		if err != nil {
			return replayed, err
		}
	}
	return replayed, nil
}

// replayNodeLocks replays one surviving node's logical lock log (the per-node
// unit the parallel pipeline fans out over; each node's pre-crash holdings
// were simultaneously granted, hence mutually compatible, so per-node replays
// re-grant without waiting in any order).
func (db *DB) replayNodeLocks(n machine.NodeID) (int, error) {
	type lockKey struct {
		txn  wal.TxnID
		name uint64
	}
	held := make(map[lockKey]bool)
	order := []lockKey{}
	db.Logs[n].Scan(1, func(rec wal.Record) bool {
		k := lockKey{rec.Txn, rec.Lock}
		switch rec.Type {
		case wal.TypeLockAcquire:
			if _, ok := held[k]; !ok {
				order = append(order, k)
			}
			held[k] = true
		case wal.TypeLockRelease:
			delete(held, k)
		}
		return true
	})
	replayed := 0
	for _, k := range order {
		if _, ok := held[k]; !ok {
			continue
		}
		// Re-grant only what the transaction's own bookkeeping confirms it
		// holds, in the bookkeeping's mode. The log alone over-approximates:
		// an acquire record is written before the grant decision, so it may
		// belong to a request that was only ever queued — and possibly
		// withdrawn during this very recovery, when lock logging is
		// suppressed and no release record can mark the withdrawal. A
		// never-granted request is absent from the transaction's held-lock
		// list, so releaseAll would never free a re-grant built from it: the
		// entry would outlive the transaction and wedge every later waiter
		// (no waits-for cycle; the holder is gone). Entries the bookkeeping
		// does confirm are exactly the ones releaseAll frees at finish, so a
		// survivor finishing after this point cleans up behind us. Dropping
		// a genuine waiter here is safe: its retry loop re-queues the
		// request against the rebuilt table.
		db.mu.Lock()
		st, known := db.txns[k.txn]
		active := known && st.status == TxnActive && !st.crashed
		var mode lock.Mode
		noted := false
		if active {
			for _, hl := range st.locks {
				if hl.name == importName(k.name) {
					mode, noted = hl.mode, true
					break
				}
			}
		}
		db.mu.Unlock()
		if !active || !noted {
			continue
		}
		if _, err := db.Locks.Acquire(n, k.txn, importName(k.name), mode); err != nil {
			return replayed, err
		}
		// The transaction can still commit or abort between the bookkeeping
		// check above and the grant: its releaseAll then ran against the
		// half-rebuilt table, found nothing, and tolerated ErrNotHeld — so
		// the grant would leak. Re-check and take the grant back if the
		// transaction finished in the window; a finish after this re-check
		// sees the granted entry (it is in its held-lock list) and releases
		// it itself.
		db.mu.Lock()
		st, known = db.txns[k.txn]
		active = known && st.status == TxnActive && !st.crashed
		db.mu.Unlock()
		if !active {
			if err := db.Locks.Release(n, k.txn, importName(k.name)); err != nil && !errors.Is(err, lock.ErrNotHeld) {
				return replayed, err
			}
			continue
		}
		replayed++
	}
	db.wfProgress().Note(obs.PhaseLockRebuild.String(), replayed, 0)
	return replayed, nil
}

// baselineReboot implements the conventional recovery story the paper's
// introduction describes: a single node crash brings down the entire shared
// memory system. Every node's volatile state — caches, volatile log tails,
// transaction control blocks, the whole lock space — is lost; recovery
// replays committed work from the stable logs and aborts every transaction
// that was active anywhere.
func (db *DB) baselineReboot(rep *RecoveryReport, phase func(obs.Phase)) error {
	// The rest of the machine goes down too.
	rest := db.M.AliveNodes()
	db.Crash(rest...)
	for n := machine.NodeID(0); int(n) < db.M.Nodes(); n++ {
		if err := db.M.Restart(n); err != nil {
			return err
		}
		db.Logs[n].Reopen()
	}
	coord := machine.NodeID(0)
	// The lock table is volatile and gone; reformat it.
	if _, err := db.Locks.ReinstallLost(coord); err != nil {
		return err
	}
	if _, err := db.Locks.ReleaseCrashed(coord, db.M.AliveNodes()); err != nil {
		return err
	}
	phase(obs.PhaseDirectoryRepair)
	// Redo committed effects from every node's stable log.
	for n := machine.NodeID(0); int(n) < db.M.Nodes(); n++ {
		v, err := db.view(n, true) // stable prefix only: everything volatile died
		if err != nil {
			return err
		}
		if err := db.redoLog(coord, v, true, rep); err != nil {
			return err
		}
	}
	phase(obs.PhaseRedoApply)
	// Undo stolen uncommitted updates from the stable logs.
	all := make([]machine.NodeID, db.M.Nodes())
	for i := range all {
		all[i] = machine.NodeID(i)
	}
	if _, err := db.undoCrashed(coord, all, rep); err != nil {
		return err
	}
	phase(obs.PhaseUndo)
	// Every active transaction aborts: failure atomicity without isolation.
	db.mu.Lock()
	for _, st := range db.txns {
		if st.status == TxnActive {
			st.status = TxnAborted
			st.crashed = true
			db.stats.Aborts++
			db.stats.TxnsAbortedByRecovery++
			rep.Aborted = append(rep.Aborted, st.id)
		}
	}
	db.mu.Unlock()
	phase(obs.PhaseSettle)
	sortTxns(rep.Aborted)
	db.bump(func(s *Stats) {
		s.RedoApplied += int64(rep.RedoApplied)
		s.RedoSkipped += int64(rep.RedoSkipped)
		s.UndoApplied += int64(rep.UndoApplied)
	})
	return nil
}

// RestartNode brings a crashed node back into the configuration with a cold
// cache and a reopened log. Its stable log prefix is intact; its next
// transactions get fresh sequence numbers.
func (db *DB) RestartNode(n machine.NodeID) error {
	if err := db.M.Restart(n); err != nil {
		return err
	}
	db.Logs[n].Reopen()
	return nil
}

func sortTxns(ts []wal.TxnID) {
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
}

func importName(n uint64) lock.Name { return lock.Name(n) }
