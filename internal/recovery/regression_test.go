package recovery_test

import "testing"

// Seeds that exposed real protocol bugs during development; kept as fixed
// regressions.
//
//   - -4543786291672582091: a page stolen to disk while a record was
//     tagged, whose line later died with two nodes, resurrected the stale
//     undo tag from the disk image after the tagging transaction had
//     committed (fixed by stripping tags at flush time and reconciling
//     survivor tags against their logs during the Selective Redo scan).
func TestRegressionStaleTagFromStolenPage(t *testing.T) {
	for _, proto := range ifaProtocols {
		if v := runIFAScenario(t, proto, -4543786291672582091); len(v) != 0 {
			for _, s := range v {
				t.Errorf("%v: %s", proto, s)
			}
		}
	}
}
