package recovery

import (
	"sync"
	"sync/atomic"
	"time"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/obs/prof"
	"smdb/internal/storage"
	"smdb/internal/wal"
)

// Parallel restart recovery (the node-parallel reading of section 4.1.2):
// each surviving node can scan its own log, probe its own residency, and
// tag-scan its own cache independently, so the pipeline fans those units out
// across Cfg.RecoveryWorkers goroutines. Determinism is preserved by
// partitioning along independence boundaries — per node for log scans, lock
// replay, and cache flushes; per page for redo (same-slot version decisions
// depend only on same-slot order, and a slot lives on exactly one page) —
// and by merging worker results in a fixed order (node order, candidate-list
// order). Post-recovery database state, abort sets, and the Redo/Undo
// counters are identical at every worker count; only host wall clock and the
// incidental simulated interleaving change.

// ParPhase records one parallel fan-out of restart recovery: which phase ran
// fanned out, over how many goroutines, and the host wall-clock time the
// fan-out took (the quantity the parallel pipeline exists to shrink;
// simulated time is tracked separately by RecoveryReport.Phases).
type ParPhase struct {
	Phase  obs.Phase
	Fanout int
	Wall   time.Duration
}

// forEachPar runs f(0..n-1) with unit chunk weights and no worker-slot
// awareness — the compatibility wrapper over forEachChunk for fan-outs whose
// tasks are roughly even or too few to matter.
func (db *DB) forEachPar(rep *RecoveryReport, phase obs.Phase, n, workers int, f func(i int, tm *prof.TaskMeter) error) error {
	return db.forEachChunk(rep, phase, n, workers, nil, func(i, _ int, tm *prof.TaskMeter) error {
		return f(i, tm)
	})
}

// forEachChunk runs f(0..n-1) across at most workers goroutines with
// dynamic chunked work-stealing: the index space is pre-cut into contiguous
// weight-balanced chunks (see balanceChunks; weight may be nil for unit
// weights), and workers claim whole chunks through one atomic cursor until
// the queue drains. The fan-out is recorded under phase in rep.ParPhases,
// and the lowest-index error is returned (so the surfaced error does not
// depend on scheduling). Every task runs exactly once even after another
// task fails — recovery tasks are idempotent and a retrying Recover would
// repeat them anyway, so draining is simpler than cancellation and keeps
// the shard-merge logic unconditional.
//
// f receives the task index i and the claiming worker's slot w (0 <=
// w < workers, stable for that goroutine) so tasks can use per-worker
// scratch arenas without locking; which worker runs which task is the one
// scheduling-dependent input, so f must never let w influence results —
// only placement of reusable scratch.
//
// With a profiler attached, each worker owns a TaskMeter: task busy time is
// measured around every f call, and tasks report records/bytes through the
// meter (nil when profiling is off — TaskMeter methods are nil-safe, but
// tasks that would do extra counting work guard on tm != nil). The inline
// workers<=1 path stays allocation- and clock-free when no profiler is
// attached; when one is, the whole loop is attributed as a one-worker
// fan-out so sequential runs produce the same busy accounting shape the
// parallel pipeline does.
func (db *DB) forEachChunk(rep *RecoveryReport, phase obs.Phase, n, workers int, weight func(int) int, f func(i, w int, tm *prof.TaskMeter) error) error {
	if workers > n {
		workers = n
	}
	wp := db.profWorkers()
	if workers <= 1 {
		if wp == nil {
			for i := 0; i < n; i++ {
				if err := f(i, 0, nil); err != nil {
					return err
				}
			}
			return nil
		}
		start := time.Now()
		meters := make([]prof.TaskMeter, 1)
		var ferr error
		for i := 0; i < n; i++ {
			t0 := prof.Now()
			err := f(i, 0, &meters[0])
			meters[0].AddTask(prof.Now() - t0)
			if err != nil {
				ferr = err
				break
			}
		}
		db.recordFanout(wp, phase, 1, time.Since(start), meters)
		return ferr
	}
	start := time.Now()
	chunks := balanceChunks(n, workers, db.Cfg.RecoveryStealGrain, weight)
	errs := make([]error, n)
	var meters []prof.TaskMeter
	if wp != nil {
		meters = make([]prof.TaskMeter, workers)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var tm *prof.TaskMeter
			if meters != nil {
				tm = &meters[w]
			}
			for {
				ci := int(next.Add(1)) - 1
				if ci >= len(chunks) {
					return
				}
				for i := chunks[ci].lo; i < chunks[ci].hi; i++ {
					if tm != nil {
						t0 := prof.Now()
						errs[i] = f(i, w, tm)
						tm.AddTask(prof.Now() - t0)
					} else {
						errs[i] = f(i, w, nil)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	rep.ParPhases = append(rep.ParPhases, ParPhase{Phase: phase, Fanout: workers, Wall: wall})
	db.recordFanout(wp, phase, workers, wall, meters)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// recordFanout feeds one completed fan-out into the worker profiler and, when
// an observer is attached, emits a KindProfFanout span so the fan-out shows
// up in the Chrome trace (anchored at the recovery's simulated position, with
// host wall-clock duration and summed worker busy time as args).
func (db *DB) recordFanout(wp *prof.WorkerProf, phase obs.Phase, workers int, wall time.Duration, meters []prof.TaskMeter) {
	if wp == nil {
		return
	}
	wp.RecordFanout(phase.String(), wall.Nanoseconds(), meters)
	var busy int64
	for i := range meters {
		busy += meters[i].BusyNS
	}
	db.Observer().Record(obs.Event{
		Kind: obs.KindProfFanout, Phase: phase, Node: obs.SystemNode,
		Sim: db.M.MaxClock(), Dur: wall.Nanoseconds(),
		A: int64(workers), B: busy,
	})
}

// flushAllCachesPar discards every surviving node's cached database lines,
// one DiscardAll sweep per node, fanned out across the workers (Redo All
// step 1; nodes' discard sets are disjoint except for shared lines, which
// DiscardAll drops per-holder under the line's stripe). Chunks are weighted
// by cached-line counts so one hot node's sweep does not strand the rest.
func (db *DB) flushAllCachesPar(alive []machine.NodeID, rep *RecoveryReport, w int) {
	lineSize := db.M.LineSize()
	weight := func(i int) int { return db.M.CachedLineCount(alive[i]) }
	// DiscardAll cannot fail; forEachChunk's error is structurally nil.
	_ = db.forEachChunk(rep, obs.PhaseRedoScan, len(alive), w, weight, func(i, _ int, tm *prof.TaskMeter) error {
		dropped := db.M.DiscardAll(alive[i], db.Store.Contains)
		if tm != nil {
			tm.AddRecords(dropped)
			tm.AddBytes(dropped * lineSize)
		}
		return nil
	})
}

// collectRedoPar is the parallel redo scan: one goroutine per node's log,
// weighted by log length, with the per-node candidate lists concatenated in
// node order — exactly the sequential scan's output.
func (db *DB) collectRedoPar(alive []machine.NodeID, rep *RecoveryReport, w int) ([]redoCand, error) {
	coord := alive[0]
	n := db.M.Nodes()
	parts := make([][]redoCand, n)
	weight := func(i int) int { return db.Logs[i].Len() }
	err := db.forEachChunk(rep, obs.PhaseRedoScan, n, w, weight, func(i, ws int, tm *prof.TaskMeter) error {
		part, err := db.collectRedoNode(machine.NodeID(i), coord, db.arena(ws))
		parts[i] = part
		if tm != nil {
			tm.AddRecords(len(part))
			b := 0
			for _, c := range part {
				b += len(c.rec.Before) + len(c.rec.After)
			}
			tm.AddBytes(b)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	mergeStart := profMergeStart(db)
	var cands []redoCand
	for _, part := range parts {
		cands = append(cands, part...)
	}
	profMergeEnd(db, obs.PhaseRedoScan, mergeStart)
	return cands, nil
}

// profMergeStart/profMergeEnd bracket a sequential merge step (concatenation,
// shard roll-up, dedupe) so the profiler can separate merge cost from worker
// busy time. With no profiler attached both are single branch no-ops.
func profMergeStart(db *DB) int64 {
	if db.profWorkers() == nil {
		return -1
	}
	return prof.Now()
}

func profMergeEnd(db *DB, phase obs.Phase, start int64) {
	if start < 0 {
		return
	}
	db.profWorkers().AddMerge(phase.String(), prof.Now()-start)
}

// pageBuckets partitions redo candidates by page, preserving candidate-list
// order within each bucket. Buckets are ordered by first appearance, so the
// partition itself is deterministic.
func pageBuckets(cands []redoCand) [][]redoCand {
	idx := make(map[storage.PageID]int)
	var buckets [][]redoCand
	for _, c := range cands {
		i, ok := idx[c.rec.Page]
		if !ok {
			i = len(buckets)
			idx[c.rec.Page] = i
			buckets = append(buckets, nil)
		}
		buckets[i] = append(buckets[i], c)
	}
	return buckets
}

// probeRedoPar probes residency page-bucket-parallel: all of one page's
// candidates (hence all of its lines and its one header line) belong to one
// worker, so concurrent workers fetch disjoint pages. Chunks are weighted by
// bucket size — the hot page's bucket dominated the old per-bucket handout.
func (db *DB) probeRedoPar(cands []redoCand, rep *RecoveryReport, w int) error {
	buckets := pageBuckets(cands)
	weight := func(i int) int { return len(buckets[i]) }
	return db.forEachChunk(rep, obs.PhaseProbe, len(buckets), w, weight, func(i, _ int, tm *prof.TaskMeter) error {
		tm.AddRecords(len(buckets[i]))
		return db.probeRedoSlice(buckets[i])
	})
}

// applyRedoPar applies redo page-bucket-parallel with per-bucket counter
// shards, merged in bucket order: same-page candidates keep their list order,
// so every version-check decision — and therefore RedoApplied/RedoSkipped —
// matches the sequential pipeline exactly. Each worker slot applies through
// its own reusable arena (run carving + tag scratch), and chunks are
// weighted by bucket size.
func (db *DB) applyRedoPar(cands []redoCand, rep *RecoveryReport, w int) error {
	buckets := pageBuckets(cands)
	shards := make([]RecoveryReport, len(buckets))
	weight := func(i int) int { return len(buckets[i]) }
	err := db.forEachChunk(rep, obs.PhaseRedoApply, len(buckets), w, weight, func(i, ws int, tm *prof.TaskMeter) error {
		if tm != nil {
			tm.AddRecords(len(buckets[i]))
			b := 0
			for _, c := range buckets[i] {
				b += len(c.rec.After)
			}
			tm.AddBytes(b)
		}
		return db.applyRedoSlice(buckets[i], &shards[i], db.arena(ws))
	})
	mergeStart := profMergeStart(db)
	for i := range shards {
		rep.RedoApplied += shards[i].RedoApplied
		rep.RedoSkipped += shards[i].RedoSkipped
	}
	profMergeEnd(db, obs.PhaseRedoApply, mergeStart)
	return err
}

// undoTagScanPar runs the Selective Redo undo scan in three steps: parallel
// tagger-index builds (read-only log scans), parallel read-only cache scans,
// then a node-order merge deduplicated by rid feeding the sequential apply.
// The dedupe reproduces the sequential pipeline's "first scanner fixes it"
// outcome: sequentially, an applied repair migrates the line exclusively to
// the fixer, so later nodes never rescan it; with read-only parallel scans
// every holder of a shared line reports it, and keeping only the first
// (lowest alive-order) action per rid yields the same repair set, applied by
// the same node, in the same order — so UndoApplied matches exactly.
// TagScanLines may legitimately differ (shared lines are counted once per
// holder here), which is why the equivalence gate excludes it.
func (db *DB) undoTagScanPar(alive, crashed []machine.NodeID, rep *RecoveryReport, w int) error {
	down := nodeSet(crashed)
	// Tagger indexes for every survivor up front: the scans below read them
	// concurrently, so the lazy build of the sequential path would race.
	idx := make([]map[slotVer]wal.TxnID, db.M.Nodes())
	logWeight := func(i int) int { return db.Logs[alive[i]].Len() }
	if err := db.forEachChunk(rep, obs.PhaseUndoTagScan, len(alive), w, logWeight, func(i, _ int, tm *prof.TaskMeter) error {
		idx[alive[i]] = db.buildTaggerIndex(alive[i])
		tm.AddRecords(len(idx[alive[i]]))
		return nil
	}); err != nil {
		return err
	}
	taggerIndex := func(n machine.NodeID) map[slotVer]wal.TxnID { return idx[n] }
	acts := make([][]tagAction, len(alive))
	lines := make([]int, len(alive))
	cacheWeight := func(i int) int { return db.M.CachedLineCount(alive[i]) }
	if err := db.forEachChunk(rep, obs.PhaseUndoTagScan, len(alive), w, cacheWeight, func(i, _ int, tm *prof.TaskMeter) error {
		a, l, err := db.scanNodeTags(alive[i], down, taggerIndex)
		acts[i], lines[i] = a, l
		tm.AddRecords(l)
		return err
	}); err != nil {
		return err
	}
	mergeStart := profMergeStart(db)
	seen := make(map[heap.RID]bool)
	var merged []tagAction
	for i := range acts {
		rep.TagScanLines += lines[i]
		for _, a := range acts[i] {
			if seen[a.rid] {
				continue
			}
			seen[a.rid] = true
			merged = append(merged, a)
		}
	}
	profMergeEnd(db, obs.PhaseUndoTagScan, mergeStart)
	return db.applyTagActions(merged, crashed, rep)
}

// replaySurvivorLocksPar replays lock logs one goroutine per surviving node.
// Pre-crash holdings across nodes were simultaneously granted, hence
// compatible, so concurrent re-grants never wait on each other; Acquire is
// idempotent, so the per-node counts are order-independent. The caller holds
// the log-suppression latch.
func (db *DB) replaySurvivorLocksPar(alive []machine.NodeID, rep *RecoveryReport, w int) (int, error) {
	counts := make([]int, len(alive))
	weight := func(i int) int { return db.Logs[alive[i]].Len() }
	err := db.forEachChunk(rep, obs.PhaseLockRebuild, len(alive), w, weight, func(i, _ int, tm *prof.TaskMeter) error {
		n, err := db.replayNodeLocks(alive[i])
		counts[i] = n
		tm.AddRecords(n)
		return err
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, err
}
