package recovery

import (
	"sync"
	"sync/atomic"
	"time"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/storage"
	"smdb/internal/wal"
)

// Parallel restart recovery (the node-parallel reading of section 4.1.2):
// each surviving node can scan its own log, probe its own residency, and
// tag-scan its own cache independently, so the pipeline fans those units out
// across Cfg.RecoveryWorkers goroutines. Determinism is preserved by
// partitioning along independence boundaries — per node for log scans, lock
// replay, and cache flushes; per page for redo (same-slot version decisions
// depend only on same-slot order, and a slot lives on exactly one page) —
// and by merging worker results in a fixed order (node order, candidate-list
// order). Post-recovery database state, abort sets, and the Redo/Undo
// counters are identical at every worker count; only host wall clock and the
// incidental simulated interleaving change.

// ParPhase records one parallel fan-out of restart recovery: which phase ran
// fanned out, over how many goroutines, and the host wall-clock time the
// fan-out took (the quantity the parallel pipeline exists to shrink;
// simulated time is tracked separately by RecoveryReport.Phases).
type ParPhase struct {
	Phase  obs.Phase
	Fanout int
	Wall   time.Duration
}

// forEachPar runs f(0..n-1) across at most workers goroutines, records the
// fan-out under phase in rep.ParPhases, and returns the lowest-index error
// (so the surfaced error does not depend on scheduling). Tasks are handed
// out by an atomic counter; every task runs exactly once even after another
// task fails — recovery tasks are idempotent and a retrying Recover would
// repeat them anyway, so draining is simpler than cancellation and keeps the
// shard-merge logic unconditional.
func (db *DB) forEachPar(rep *RecoveryReport, phase obs.Phase, n, workers int, f func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	start := time.Now()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	rep.ParPhases = append(rep.ParPhases, ParPhase{Phase: phase, Fanout: workers, Wall: time.Since(start)})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// flushAllCachesPar discards every surviving node's cached database lines,
// one DiscardAll sweep per node, fanned out across the workers (Redo All
// step 1; nodes' discard sets are disjoint except for shared lines, which
// DiscardAll drops per-holder under the line's stripe).
func (db *DB) flushAllCachesPar(alive []machine.NodeID, rep *RecoveryReport, w int) {
	// DiscardAll cannot fail; forEachPar's error is structurally nil.
	_ = db.forEachPar(rep, obs.PhaseRedoScan, len(alive), w, func(i int) error {
		db.M.DiscardAll(alive[i], db.Store.Contains)
		return nil
	})
}

// collectRedoPar is the parallel redo scan: one goroutine per node's log,
// with the per-node candidate lists concatenated in node order — exactly the
// sequential scan's output.
func (db *DB) collectRedoPar(alive []machine.NodeID, rep *RecoveryReport, w int) ([]redoCand, error) {
	coord := alive[0]
	n := db.M.Nodes()
	parts := make([][]redoCand, n)
	err := db.forEachPar(rep, obs.PhaseRedoScan, n, w, func(i int) error {
		part, err := db.collectRedoNode(machine.NodeID(i), coord)
		parts[i] = part
		return err
	})
	if err != nil {
		return nil, err
	}
	var cands []redoCand
	for _, part := range parts {
		cands = append(cands, part...)
	}
	return cands, nil
}

// pageBuckets partitions redo candidates by page, preserving candidate-list
// order within each bucket. Buckets are ordered by first appearance, so the
// partition itself is deterministic.
func pageBuckets(cands []redoCand) [][]redoCand {
	idx := make(map[storage.PageID]int)
	var buckets [][]redoCand
	for _, c := range cands {
		i, ok := idx[c.rec.Page]
		if !ok {
			i = len(buckets)
			idx[c.rec.Page] = i
			buckets = append(buckets, nil)
		}
		buckets[i] = append(buckets[i], c)
	}
	return buckets
}

// probeRedoPar probes residency page-bucket-parallel: all of one page's
// candidates (hence all of its lines and its one header line) belong to one
// worker, so concurrent workers fetch disjoint pages.
func (db *DB) probeRedoPar(cands []redoCand, rep *RecoveryReport, w int) error {
	buckets := pageBuckets(cands)
	return db.forEachPar(rep, obs.PhaseProbe, len(buckets), w, func(i int) error {
		return db.probeRedoSlice(buckets[i])
	})
}

// applyRedoPar applies redo page-bucket-parallel with per-bucket counter
// shards, merged in bucket order: same-page candidates keep their list order,
// so every version-check decision — and therefore RedoApplied/RedoSkipped —
// matches the sequential pipeline exactly.
func (db *DB) applyRedoPar(cands []redoCand, rep *RecoveryReport, w int) error {
	buckets := pageBuckets(cands)
	shards := make([]RecoveryReport, len(buckets))
	err := db.forEachPar(rep, obs.PhaseRedoApply, len(buckets), w, func(i int) error {
		for _, c := range buckets[i] {
			rid := heap.RID{Page: c.rec.Page, Slot: c.rec.Slot}
			if err := db.redoRecord(c.onto, c.rec, rid, &shards[i]); err != nil {
				return err
			}
		}
		return nil
	})
	for i := range shards {
		rep.RedoApplied += shards[i].RedoApplied
		rep.RedoSkipped += shards[i].RedoSkipped
	}
	return err
}

// undoTagScanPar runs the Selective Redo undo scan in three steps: parallel
// tagger-index builds (read-only log scans), parallel read-only cache scans,
// then a node-order merge deduplicated by rid feeding the sequential apply.
// The dedupe reproduces the sequential pipeline's "first scanner fixes it"
// outcome: sequentially, an applied repair migrates the line exclusively to
// the fixer, so later nodes never rescan it; with read-only parallel scans
// every holder of a shared line reports it, and keeping only the first
// (lowest alive-order) action per rid yields the same repair set, applied by
// the same node, in the same order — so UndoApplied matches exactly.
// TagScanLines may legitimately differ (shared lines are counted once per
// holder here), which is why the equivalence gate excludes it.
func (db *DB) undoTagScanPar(alive, crashed []machine.NodeID, rep *RecoveryReport, w int) error {
	down := nodeSet(crashed)
	// Tagger indexes for every survivor up front: the scans below read them
	// concurrently, so the lazy build of the sequential path would race.
	idx := make([]map[slotVer]wal.TxnID, db.M.Nodes())
	if err := db.forEachPar(rep, obs.PhaseUndoTagScan, len(alive), w, func(i int) error {
		idx[alive[i]] = db.buildTaggerIndex(alive[i])
		return nil
	}); err != nil {
		return err
	}
	taggerIndex := func(n machine.NodeID) map[slotVer]wal.TxnID { return idx[n] }
	acts := make([][]tagAction, len(alive))
	lines := make([]int, len(alive))
	if err := db.forEachPar(rep, obs.PhaseUndoTagScan, len(alive), w, func(i int) error {
		a, l, err := db.scanNodeTags(alive[i], down, taggerIndex)
		acts[i], lines[i] = a, l
		return err
	}); err != nil {
		return err
	}
	seen := make(map[heap.RID]bool)
	var merged []tagAction
	for i := range acts {
		rep.TagScanLines += lines[i]
		for _, a := range acts[i] {
			if seen[a.rid] {
				continue
			}
			seen[a.rid] = true
			merged = append(merged, a)
		}
	}
	return db.applyTagActions(merged, crashed, rep)
}

// replaySurvivorLocksPar replays lock logs one goroutine per surviving node.
// Pre-crash holdings across nodes were simultaneously granted, hence
// compatible, so concurrent re-grants never wait on each other; Acquire is
// idempotent, so the per-node counts are order-independent. The caller holds
// the log-suppression latch.
func (db *DB) replaySurvivorLocksPar(alive []machine.NodeID, rep *RecoveryReport, w int) (int, error) {
	counts := make([]int, len(alive))
	err := db.forEachPar(rep, obs.PhaseLockRebuild, len(alive), w, func(i int) error {
		n, err := db.replayNodeLocks(alive[i])
		counts[i] = n
		return err
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, err
}
