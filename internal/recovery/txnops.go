package recovery

import (
	"errors"
	"fmt"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/obs/waterfall"
	"smdb/internal/wal"
)

// forceThroughTxn is forceThrough with waterfall attribution: the simulated
// time the force costs t's node is recorded as a log-force wait on t's
// waterfall (zero — and unrecorded — when a group force already covered the
// LSN, which is exactly the waterfall's point: only real stalls appear).
func (db *DB) forceThroughTxn(nd machine.NodeID, t wal.TxnID, lsn wal.LSN, bump func(*Stats)) error {
	wf := db.wfp.Load()
	if wf == nil {
		return db.forceThrough(nd, lsn, bump)
	}
	start := db.M.Clock(nd)
	err := db.forceThrough(nd, lsn, bump)
	if end := db.M.Clock(nd); end > start {
		wf.AddWait(int64(t), waterfall.CauseLogForce, start, end-start, int64(lsn), 0)
	}
	return err
}

// forceCommit makes t's commit record at lsn stable. With group commit
// forces off it is forceThroughTxn; with them on, the force runs through
// the WAL's epoch/group path: the epoch leader pays the physical force (and
// the CommitForces stat) while followers and already-covered arrivals ride
// a shared force, counted as GroupCommitJoins. Torn-force injection applies
// identically — a group force is still one physical device write a crash
// can tear. Callers must still re-check ForcedLSN before acknowledging the
// commit: a down log yields a zero group result, not an error.
func (db *DB) forceCommit(nd machine.NodeID, t wal.TxnID, lsn wal.LSN) error {
	if !db.Cfg.GroupCommitForces {
		return db.forceThroughTxn(nd, t, lsn, func(s *Stats) { s.CommitForces++ })
	}
	if inj := db.injector(); inj != nil {
		if frac, fire := inj.TornForce(nd, db.aliveCount()); fire {
			db.Logs[nd].ForceTorn(lsn, frac)
			db.M.Crash(nd)
			return fmt.Errorf("recovery: log force on node %d torn by crash: %w", nd, machine.ErrNodeDown)
		}
	}
	wf := db.wfp.Load()
	start := db.M.Clock(nd)
	res := db.Logs[nd].ForceGroup(lsn)
	switch {
	case res.Led:
		cost := db.logForceCost()
		db.M.AdvanceClock(nd, cost)
		db.bump(func(s *Stats) { s.CommitForces++ })
		db.Observer().ObserveLogForce(cost)
	case res.Joined:
		// The follower waited out another commit's physical force: same
		// simulated latency, no device write of its own.
		db.M.AdvanceClock(nd, db.logForceCost())
		db.bump(func(s *Stats) { s.GroupCommitJoins++ })
	case res.Coalesced:
		// Already stable on arrival: a free ride, no wait at all.
		db.bump(func(s *Stats) { s.GroupCommitJoins++ })
	}
	if wf != nil {
		if end := db.M.Clock(nd); end > start {
			wf.AddWait(int64(t), waterfall.CauseLogForce, start, end-start, int64(lsn), 0)
		}
	}
	return nil
}

// Commit commits transaction t: its undo tags are cleared (the record is no
// longer active, so its node ID becomes null), a commit record is appended
// and the node's log forced through it (durability), and the transaction's
// final images are captured as the new last-committed values. Lock release
// is the caller's responsibility, after Commit returns (strict 2PL).
func (db *DB) Commit(nd machine.NodeID, t wal.TxnID) error {
	st, err := db.txn(t)
	if err != nil {
		return err
	}
	if st.status != TxnActive {
		return fmt.Errorf("recovery: commit of %v transaction %v", st.status, t)
	}
	if t.Node() != nd {
		return fmt.Errorf("recovery: %v cannot commit on node %d", t, nd)
	}
	// Commit is an instrumented operation: the force below lands as a
	// log-force wait and the remainder (deferred flush, tag clears inside
	// finalizeCommit) as compute. finalizeCommit closes the bracket just
	// before it ends the waterfall; on the error paths the node is down and
	// the crash sweep already dropped the open waterfall.
	db.wfp.Load().OpStart(int64(t), int32(nd), db.M.Clock(nd))
	db.flushDeferred(nd, st)
	lsn := db.Logs[nd].Append(wal.Record{Type: wal.TypeCommit, Txn: t})
	if err := db.forceCommit(nd, t, lsn); err != nil {
		return fmt.Errorf("recovery: commit of %v: %w", t, err)
	}
	// The commit is acknowledged only if its record really reached stable
	// store — the node may have crashed out from under this goroutine, in
	// which case restart recovery is the sole arbiter of the outcome.
	if lsn == 0 || db.Logs[nd].ForcedLSN() < lsn {
		return fmt.Errorf("recovery: commit of %v interrupted by node failure: %w", t, machine.ErrNodeDown)
	}
	return db.finalizeCommit(t)
}

// flushDeferred appends any commit-deferred update records (AblatedNoLBM
// only) to the node's log.
func (db *DB) flushDeferred(nd machine.NodeID, st *txnState) {
	db.mu.Lock()
	recs := st.deferred
	st.deferred = nil
	db.mu.Unlock()
	for _, rec := range recs {
		lsn := db.Logs[nd].Append(rec)
		db.BM.NoteUpdate(rec.Page, nd, lsn)
	}
}

// clearTag nulls rid's undo tag inside a line lock (the record is no longer
// active once its transaction commits). If the record's line is not cached
// anywhere — destroyed by a crash racing the commit — there is no tag to
// clear: tags never reach disk, and restart recovery's tag reconciliation
// covers any residue.
func (db *DB) clearTag(nd machine.NodeID, rid heap.RID) error {
	line, _, err := db.Store.LineOf(rid)
	if err != nil {
		return err
	}
	if !db.M.Resident(line) {
		return nil
	}
	if err := db.M.GetLine(nd, line); err != nil {
		if errors.Is(err, machine.ErrLineLost) {
			return nil // lost between the check and the lock: same story
		}
		return err
	}
	defer db.mustRelease(nd, line)
	sd, err := db.Store.ReadSlot(nd, rid)
	if err != nil {
		return err
	}
	if sd.Tag != machine.NoNode {
		if err := db.Store.WriteTag(nd, rid, machine.NoNode); err != nil {
			return err
		}
		db.bump(func(s *Stats) { s.TagClears++ })
	}
	return nil
}

// Abort rolls back transaction t using the before images in its node's
// volatile log, writing a compensation record for every undo, and appends an
// abort record. Under strict 2PL this simply reinstalls every touched
// record's prior value. Structural (NTA) updates are not undone — they were
// committed early precisely so other transactions could use their results.
func (db *DB) Abort(nd machine.NodeID, t wal.TxnID) error {
	st, err := db.txn(t)
	if err != nil {
		return err
	}
	if st.status != TxnActive {
		return fmt.Errorf("recovery: abort of %v transaction %v", st.status, t)
	}
	if t.Node() != nd {
		return fmt.Errorf("recovery: %v cannot abort on node %d", t, nd)
	}
	db.mu.Lock()
	hasWrites := len(st.writes) > 0
	db.mu.Unlock()
	if db.Cfg.Protocol.DeferredLogging() && hasWrites {
		return fmt.Errorf("recovery: %v cannot abort under %v (no undo information was logged)", t, db.Cfg.Protocol)
	}
	// The rollback is a bracket whose residue lands under "undo": the walk's
	// slot reads, image installs, and directory work are undo time, while
	// line waits and page fetches inside it keep their own causes.
	wf := db.wfp.Load()
	wf.SpanStart(int64(t), int32(nd), db.M.Clock(nd), waterfall.CauseUndo)
	// Aggregate the undo per slot — the earliest before image plus the set
	// of versions this transaction wrote — exactly as crashed-transaction
	// undo does (undoCrashed), and only install where the slot still holds
	// one of the transaction's own versions. Under strict 2PL the version
	// check always passes (the X lock kept everyone else out), but after a
	// crash-and-recover episode a stranded survivor's update can have been
	// superseded by recovery itself; blindly reinstalling its before image
	// would then clobber a newer committed value.
	type slotUndo struct {
		earliest []byte
		versions map[uint64]bool
	}
	undo := make(map[heap.RID]*slotUndo)
	var order []heap.RID // reverse log order, first touch per slot
	for lsn := db.Logs[nd].LastLSNOf(t); lsn != 0; {
		rec, ok := db.Logs[nd].Get(lsn)
		if !ok {
			return fmt.Errorf("recovery: broken log chain for %v at LSN %d", t, lsn)
		}
		if rec.Type == wal.TypeUpdate && rec.NTA == 0 {
			rid := heap.RID{Page: rec.Page, Slot: rec.Slot}
			su := undo[rid]
			if su == nil {
				su = &slotUndo{versions: make(map[uint64]bool)}
				undo[rid] = su
				order = append(order, rid)
			}
			// Walking backward, the last record seen is the earliest: its
			// before image is the pre-transaction value.
			su.earliest = rec.Before
			su.versions[rec.Version] = true
		}
		lsn = rec.PrevLSN
	}
	for _, rid := range order {
		su := undo[rid]
		cur, err := db.Read(nd, rid)
		if err != nil {
			return err
		}
		if !su.versions[cur.Version] {
			// The slot no longer carries this transaction's update (it was
			// lost with a crash, or recovery already settled the slot to a
			// committed value): there is nothing of ours to undo.
			continue
		}
		if err := db.installImage(nd, rid, su.earliest, t); err != nil {
			return err
		}
	}
	db.Logs[nd].Append(wal.Record{Type: wal.TypeAbort, Txn: t})
	db.mu.Lock()
	st.status = TxnAborted
	db.stats.Aborts++
	o := db.obs
	db.mu.Unlock()
	now := db.M.Clock(nd)
	o.Instant(obs.KindTxnAbort, int32(nd), now, int64(t), 0)
	wf.OpEnd(int64(t), int32(nd), now)
	wf.End(int64(t), now, waterfall.OutcomeAborted)
	return nil
}

// installImage writes a logged slot image (flags + data) into rid with a
// fresh version, a null undo tag, and a compensation log record. It is the
// shared undo mechanism of transaction abort and restart recovery.
func (db *DB) installImage(nd machine.NodeID, rid heap.RID, img []byte, t wal.TxnID) error {
	if err := db.BM.Fetch(nd, rid.Page); err != nil {
		return err
	}
	line, _, err := db.Store.LineOf(rid)
	if err != nil {
		return err
	}
	hdr := db.Store.HeaderLine(rid.Page)
	if err := db.M.GetLine(nd, hdr); err != nil {
		return err
	}
	if err := db.M.GetLine(nd, line); err != nil {
		db.mustRelease(nd, hdr)
		return err
	}
	defer db.mustRelease(nd, hdr)
	defer db.mustRelease(nd, line)

	version := db.NextVersion()
	flags, data := splitImage(img)
	lsn := db.Logs[nd].Append(wal.Record{
		Type: wal.TypeCLR, Txn: t, Page: rid.Page, Slot: rid.Slot,
		Version: version, After: img,
	})
	db.BM.NoteUpdate(rid.Page, nd, lsn)
	if err := db.Store.WriteSlot(nd, rid, heap.SlotData{
		Tag: machine.NoNode, Flags: flags, Version: version, Data: data,
	}); err != nil {
		return err
	}
	if err := db.Store.SetPageVersion(nd, rid.Page, version); err != nil {
		return err
	}
	db.BM.MarkDirty(rid.Page)
	return nil
}

// BeginNTA opens a nested top-level action for t (a structural change such
// as a B-tree split) and returns its id. Updates made with StructuralUpdate
// under this id survive t's abort.
func (db *DB) BeginNTA(nd machine.NodeID, t wal.TxnID) (uint64, error) {
	st, err := db.txn(t)
	if err != nil {
		return 0, err
	}
	db.mu.Lock()
	if st.nta != 0 {
		db.mu.Unlock()
		return 0, fmt.Errorf("recovery: %v already has NTA %d open", t, st.nta)
	}
	id := db.NextVersion()
	st.nta = id
	db.mu.Unlock()
	db.Logs[nd].Append(wal.Record{Type: wal.TypeNTABegin, Txn: t, NTA: id})
	return id, nil
}

// EndNTA commits the nested top-level action. Under IFA protocols the
// structural change is committed early: the node's log is forced through the
// NTA-end record before any other transaction is allowed to use the changed
// structure, so no cross-node abort dependency can form on it (section 4.2).
func (db *DB) EndNTA(nd machine.NodeID, t wal.TxnID, nta uint64) error {
	st, err := db.txn(t)
	if err != nil {
		return err
	}
	db.mu.Lock()
	if st.nta != nta {
		db.mu.Unlock()
		return fmt.Errorf("recovery: %v has NTA %d open, not %d", t, st.nta, nta)
	}
	st.nta = 0
	db.mu.Unlock()
	lsn := db.Logs[nd].Append(wal.Record{Type: wal.TypeNTAEnd, Txn: t, NTA: nta})
	if db.Cfg.Protocol.EarlyCommitsStructural() {
		if err := db.forceThroughTxn(nd, t, lsn, func(s *Stats) { s.NTAForces++ }); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint flushes every dirty page (with WAL enforcement), writes a
// forced checkpoint record to every live node's log, and reclaims log
// space: everything below both the checkpoint record and the earliest
// record of any still-active transaction on that node is discarded —
// committed effects below the horizon are in the stable database (the
// flush above), and active transactions keep their full undo chains.
// Restart redo scans begin at each node's last checkpoint.
func (db *DB) Checkpoint(nd machine.NodeID) error {
	if err := db.BM.FlushAll(nd); err != nil {
		return err
	}
	for _, n := range db.M.AliveNodes() {
		lsn := db.Logs[n].Append(wal.Record{Type: wal.TypeCheckpoint})
		if _, forced := db.Logs[n].Force(lsn); forced {
			cost := db.logForceCost()
			db.M.AdvanceClock(n, cost)
			db.Observer().ObserveLogForce(cost)
		}
		low := lsn
		db.mu.Lock()
		for _, st := range db.txns {
			if st.status == TxnActive && !st.crashed && st.id.Node() == n {
				if f := db.Logs[n].FirstLSNOf(st.id); f > 0 && f < low {
					low = f
				}
			}
		}
		db.mu.Unlock()
		db.Logs[n].DiscardThrough(low - 1)
	}
	return nil
}

// CommittedImage returns the oracle's last committed image of rid (for
// verification). The boolean is false if rid was never committed.
func (db *DB) CommittedImage(rid heap.RID) ([]byte, uint64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	ci, ok := db.committed[rid]
	if !ok {
		return nil, 0, false
	}
	return append([]byte(nil), ci.img...), ci.version, true
}
