package recovery

import "smdb/internal/machine"

// recArena is one worker slot's reusable recovery scratch: run boundaries
// and precomputed undo tags for the batched redo apply, and the dead-check
// candidate positions of the redo scan. Each slot is owned by exactly one
// goroutine at a time (fan-out worker w, or the sequential pipeline on slot
// 0), so no locking; buffers grow to the high-water mark of the workload
// and are reused across phases and across Recover calls. Explicit reuse
// instead of sync.Pool is deliberate: pooled buffers migrate between
// goroutines at GC-dependent times, and while no recovery result may
// legally depend on buffer identity, keeping placement a pure function of
// the worker slot makes that property auditable rather than probabilistic.
type recArena struct {
	runs       []redoRun
	tags       []machine.NodeID
	deadChecks []int
}

// arena returns worker slot w's scratch arena. Slots were sized at New from
// RecoveryWorkers; out-of-range callers (defensive — forEachChunk never
// hands out a slot >= RecoveryWorkers) share slot 0 with the sequential
// pipeline.
func (db *DB) arena(w int) *recArena {
	if w < 0 || w >= len(db.arenas) {
		w = 0
	}
	return &db.arenas[w]
}

// reset empties the arena's buffers, keeping their capacity.
func (a *recArena) reset() {
	a.runs = a.runs[:0]
	a.tags = a.tags[:0]
	a.deadChecks = a.deadChecks[:0]
}
