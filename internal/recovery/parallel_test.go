package recovery_test

import (
	"testing"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/recovery"
)

// TestParallelTxnCommit: a transaction spanning three nodes commits
// atomically; every branch's updates are durable.
func TestParallelTxnCommit(t *testing.T) {
	db, mgr := newDB(t, recovery.VolatileSelectiveRedo, 4)
	rids := []heap.RID{{Page: 0, Slot: 0}, {Page: 1, Slot: 0}, {Page: 2, Slot: 0}}
	seed(t, mgr, rids, 1)

	p, err := mgr.BeginParallel(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, nd := range []machine.NodeID{0, 1, 2} {
		if err := p.On(nd).Write(rids[i], []byte{byte(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	// Every branch is committed; a total machine crash keeps everything.
	db.Crash(0, 1, 2, 3)
	for n := machine.NodeID(0); n < 4; n++ {
		if err := db.RestartNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Recover([]machine.NodeID{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	for i, rid := range rids {
		got, err := db.Read(0, rid)
		if err != nil {
			t.Fatal(err)
		}
		if got.Data[0] != byte(100+i) {
			t.Errorf("%v = %d, want %d", rid, got.Data[0], 100+i)
		}
	}
}

// TestParallelTxnCrashAbortsAllBranches: if one participant's node crashes,
// the entire parallel transaction is annulled — including branches on
// surviving nodes — while an unrelated independent transaction survives.
func TestParallelTxnCrashAbortsAllBranches(t *testing.T) {
	for _, proto := range ifaProtocols {
		t.Run(proto.String(), func(t *testing.T) {
			db, mgr := newDB(t, proto, 4)
			rids := []heap.RID{{Page: 0, Slot: 0}, {Page: 1, Slot: 0}, {Page: 2, Slot: 0}, {Page: 3, Slot: 0}}
			seed(t, mgr, rids, 1)

			p, err := mgr.BeginParallel(0, 1, 2)
			if err != nil {
				t.Fatal(err)
			}
			for i, nd := range []machine.NodeID{0, 1, 2} {
				if err := p.On(nd).Write(rids[i], []byte{byte(100 + i)}); err != nil {
					t.Fatal(err)
				}
			}
			// An unrelated independent transaction on a surviving node.
			indep, err := mgr.Begin(3)
			if err != nil {
				t.Fatal(err)
			}
			if err := indep.Write(rids[3], []byte{200}); err != nil {
				t.Fatal(err)
			}

			db.Crash(2) // one participant dies
			rep, err := db.Recover([]machine.NodeID{2})
			if err != nil {
				t.Fatal(err)
			}
			// All three branches aborted; the independent txn untouched.
			if len(rep.Aborted) != 3 {
				t.Errorf("aborted %v, want all 3 branches", rep.Aborted)
			}
			for _, br := range db.Branches(p.Global()) {
				if st, _ := db.Status(br); st != recovery.TxnAborted {
					t.Errorf("branch %v status = %v, want aborted", br, st)
				}
			}
			if st, _ := db.Status(indep.ID()); st != recovery.TxnActive {
				t.Errorf("independent txn status = %v, want active", st)
			}
			// Branch effects are gone everywhere, including the surviving
			// branches' own nodes.
			for i := 0; i < 3; i++ {
				got, err := db.Read(0, rids[i])
				if err != nil {
					t.Fatal(err)
				}
				if got.Data[0] != 1 {
					t.Errorf("branch write on %v survived: %d", rids[i], got.Data[0])
				}
			}
			mustCheckIFA(t, db, 0)
			if err := indep.Commit(); err != nil {
				t.Fatalf("independent txn could not commit: %v", err)
			}
		})
	}
}

// TestParallelTxnAbort: a voluntary abort undoes every branch.
func TestParallelTxnAbort(t *testing.T) {
	db, mgr := newDB(t, recovery.VolatileSelectiveRedo, 2)
	rids := []heap.RID{{Page: 0, Slot: 0}, {Page: 1, Slot: 0}}
	seed(t, mgr, rids, 5)
	p, err := mgr.BeginParallel(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, nd := range []machine.NodeID{0, 1} {
		if err := p.On(nd).Write(rids[i], []byte{99}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Abort(); err != nil {
		t.Fatal(err)
	}
	for _, rid := range rids {
		got, err := db.Read(0, rid)
		if err != nil {
			t.Fatal(err)
		}
		if got.Data[0] != 5 {
			t.Errorf("%v = %d after abort, want 5", rid, got.Data[0])
		}
	}
	mustCheckIFA(t, db, 0)
}

// TestParallelCommitRequiresAllNodes: commit fails if a participant is
// already down.
func TestParallelCommitRequiresAllNodes(t *testing.T) {
	db, mgr := newDB(t, recovery.VolatileSelectiveRedo, 2)
	rid := heap.RID{Page: 0, Slot: 0}
	seed(t, mgr, []heap.RID{rid}, 1)
	p, err := mgr.BeginParallel(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.On(0).Write(rid, []byte{9}); err != nil {
		t.Fatal(err)
	}
	db.Crash(1)
	if err := p.Commit(); err == nil {
		t.Fatal("commit succeeded with a dead participant")
	}
	if _, err := db.Recover([]machine.NodeID{1}); err != nil {
		t.Fatal(err)
	}
	// The whole family is annulled.
	got, err := db.Read(0, rid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0] != 1 {
		t.Errorf("value = %d, want 1", got.Data[0])
	}
	mustCheckIFA(t, db, 0)
}

// TestBranchesListing covers the registry helpers.
func TestBranchesListing(t *testing.T) {
	db, mgr := newDB(t, recovery.VolatileSelectiveRedo, 3)
	p, err := mgr.BeginParallel(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	brs := db.Branches(p.Global())
	if len(brs) != 2 || brs[0].Node() != 0 || brs[1].Node() != 2 {
		t.Errorf("Branches = %v", brs)
	}
	if _, err := db.BeginBranch(p.Global(), 0); err == nil {
		t.Error("duplicate branch on one node allowed")
	}
	if len(p.Nodes()) != 2 {
		t.Errorf("Nodes = %v", p.Nodes())
	}
}
