package recovery_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/wal"
)

// These tests pin the committed-value-lost undo race deterministically, with
// no concurrency: they re-enact the exact interleaving the chaos harness
// first caught under -race.
//
// The race: a survivor passes the transaction layer's freeze check, then the
// node holding the sole (dirty, cache-only) copy of a committed value
// crashes. The survivor's in-flight update proceeds into the buffer manager,
// finds the page non-resident (the crash destroyed it), and re-installs the
// STALE disk image; its update then lands with a stale before-image and a
// fresh version number. Restart redo skips the slot (version ≥ the committed
// record's), and the survivor's stranded-transaction rollback re-installs
// the stale before-image — the committed value is gone.
//
// The fix is the machine-level install gate: while the database is frozen
// and recovery has not begun, installing a heap line fails with ErrLineLost,
// so the post-check survivor stalls and retries instead of resurrecting
// stale data. Calling DB.Update directly (below) is exactly the post-check
// state — txn.Txn.Write's freeze test has already happened by then.

// loseSoleCopy seeds rid with a checkpointed value, commits val on node 1 so
// the only copy of the committed value is dirty in node 1's cache, then
// crashes node 1 with a survivor transaction already past Begin (and, in the
// live race, past its freeze check) on node 0.
func loseSoleCopy(t *testing.T, proto recovery.Protocol) (*recovery.DB, heap.RID, []byte, wal.TxnID) {
	t.Helper()
	rid := heap.RID{Page: 0, Slot: 0}
	db, mgr := newDB(t, proto, 2)
	seed(t, mgr, []heap.RID{rid}, 1)

	committed := []byte{2, 2, 2}
	tw, err := mgr.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(rid, committed); err != nil {
		t.Fatal(err)
	}
	if err := tw.Commit(); err != nil {
		t.Fatal(err)
	}

	id, err := db.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	db.Crash(1)
	return db, rid, committed, id
}

// TestInstallGateBlocksFrozenReinstall: with the fix in place, the
// post-check survivor's update fails with ErrLineLost (retryable) instead of
// re-installing the stale disk image, and the committed value survives
// recovery plus the survivor's rollback.
func TestInstallGateBlocksFrozenReinstall(t *testing.T) {
	for _, proto := range ifaProtocols {
		t.Run(proto.String(), func(t *testing.T) {
			db, rid, committed, id := loseSoleCopy(t, proto)
			runLostWrite(t, db, rid, committed, id, false)
		})
	}
}

// TestAblatedGateReproducesLostWrite: with the gate ablated (the seed
// behavior), the same interleaving loses the committed value — the negative
// control proving the gate is the operative fix.
func TestAblatedGateReproducesLostWrite(t *testing.T) {
	db, rid, committed, id := loseSoleCopy(t, recovery.VolatileSelectiveRedo)
	db.M.SetInstallGate(nil)
	runLostWrite(t, db, rid, committed, id, true)
}

func runLostWrite(t *testing.T, db *recovery.DB, rid heap.RID, committed []byte, id wal.TxnID, ablated bool) {
	t.Helper()
	err := db.Update(0, id, rid, []byte{3, 3, 3})
	if ablated {
		if err != nil {
			t.Fatalf("ablated update: %v (the unguarded path used to succeed)", err)
		}
	} else if !errors.Is(err, machine.ErrLineLost) {
		t.Fatalf("frozen-window update returned %v, want ErrLineLost", err)
	}

	if _, err := db.Recover([]machine.NodeID{1}); err != nil {
		t.Fatal(err)
	}
	// Stranded-transaction rollback, as the chaos harness performs it.
	if err := db.Abort(0, id); err != nil {
		t.Fatal(err)
	}

	sd, err := db.Read(0, rid)
	if err != nil {
		t.Fatal(err)
	}
	violations := db.CheckIFA(0)
	lost := false
	for _, v := range violations {
		if strings.Contains(v, "committed value lost") {
			lost = true
		}
	}
	if ablated {
		// The negative control must still reproduce the bug; if it stops
		// doing so, the regression test has gone stale.
		if !lost || bytes.HasPrefix(sd.Data, committed) {
			t.Fatalf("ablated gate no longer reproduces the lost write: value=%v violations=%v",
				sd.Data, violations)
		}
		return
	}
	if len(violations) != 0 {
		t.Fatalf("IFA violations with gate in place:\n%s", strings.Join(violations, "\n"))
	}
	// Slot payloads are zero-padded to the record size; compare the prefix.
	if !bytes.HasPrefix(sd.Data, committed) {
		t.Fatalf("committed value %v lost: slot holds %v", committed, sd.Data)
	}
}
