package recovery_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/storage"
	"smdb/internal/txn"
	"smdb/internal/wal"
)

// TestQuickWALInvariant checks the write-ahead-log rule end to end: any
// record version present in the *stable database* had its update (or
// compensation) record on some node's *stable log* no later than the flush
// that wrote it (checkpoint-time log truncation may discard such records
// afterwards, once the value is durably in the database — hence the
// accumulated everStable set). The buffer manager's flush-time WAL
// enforcement — forcing every updating node's log through its last update
// to the page, via the section 6 shared (page, LSN) table — is what makes
// this hold under random interleavings of updates, commits, aborts, steals,
// and checkpoints.
func TestQuickWALInvariant(t *testing.T) {
	type key struct {
		p storage.PageID
		s uint16
		v uint64
	}
	accumulate := func(t *testing.T, db *recovery.DB, everStable map[key]bool) {
		t.Helper()
		for _, l := range db.Logs {
			recs, err := l.StableRecords()
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs {
				if r.Type == wal.TypeUpdate || r.Type == wal.TypeCLR {
					everStable[key{r.Page, r.Slot, r.Version}] = true
				}
			}
		}
	}
	check := func(t *testing.T, db *recovery.DB, seed int64, stable map[key]bool) bool {
		t.Helper()
		layout := db.Store.Layout
		accumulate(t, db, stable)
		for p := 0; p < db.Store.NPages; p++ {
			if !db.Disk.Exists(storage.PageID(p)) {
				continue
			}
			img, err := db.Disk.ReadPage(storage.PageID(p))
			if err != nil {
				t.Fatal(err)
			}
			for line := 1; line < layout.LinesPerPage; line++ {
				lineImg := img[line*layout.LineSize : (line+1)*layout.LineSize]
				for s := 0; s < layout.RecsPerLine; s++ {
					sd := heap.DecodeSlotFromLine(layout, lineImg, s)
					if sd.Version == 0 {
						continue
					}
					slot := uint16((line-1)*layout.RecsPerLine + s)
					if !stable[key{storage.PageID(p), slot, sd.Version}] {
						t.Logf("seed %d: disk page %d slot %d version %d has no stable log record",
							seed, p, slot, sd.Version)
						return false
					}
				}
			}
		}
		return true
	}

	f := func(seed int64) bool {
		everStable := make(map[key]bool)
		r := rand.New(rand.NewSource(seed))
		db, err := recovery.New(recovery.Config{
			Machine:        machine.Config{Nodes: 3, Lines: 2048},
			Protocol:       recovery.VolatileSelectiveRedo,
			LinesPerPage:   4,
			RecsPerLine:    4,
			Pages:          6,
			LockTableLines: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		mgr := txn.NewManager(db)
		layout := db.Store.Layout
		total := db.Store.NPages * layout.SlotsPerPage()
		open := make(map[int]*txn.Txn) // by slot index, to keep locks disjoint
		for step := 0; step < 120; step++ {
			switch r.Intn(10) {
			case 0, 1: // flush (steal) a random page, then re-check WAL
				p := storage.PageID(r.Intn(db.Store.NPages))
				if !db.Store.ResidentPage(p) {
					continue // nothing in memory to flush
				}
				if err := db.BM.FlushPage(machine.NodeID(r.Intn(3)), p); err != nil {
					t.Fatal(err)
				}
				if !check(t, db, seed, everStable) {
					return false
				}
			case 2: // checkpoint
				// Flush dirty pages one at a time first, checking the
				// rule after each, since Checkpoint's own flush-then-
				// truncate happens atomically from the test's viewpoint.
				for _, p := range db.BM.DirtyPages() {
					if err := db.BM.FlushPage(0, p); err != nil {
						t.Fatal(err)
					}
					if !check(t, db, seed, everStable) {
						return false
					}
				}
				if err := db.Checkpoint(0); err != nil {
					t.Fatal(err)
				}
				if !check(t, db, seed, everStable) {
					return false
				}
			default: // transactional work on a private slot
				idx := r.Intn(total)
				tx := open[idx]
				if tx == nil {
					tx, err = mgr.Begin(machine.NodeID(r.Intn(3)))
					if err != nil {
						t.Fatal(err)
					}
					open[idx] = tx
				}
				rid := heap.RID{Page: storage.PageID(idx / layout.SlotsPerPage()), Slot: uint16(idx % layout.SlotsPerPage())}
				var opErr error
				if sd, err := db.Read(tx.Node(), rid); err == nil && sd.Occupied() && !sd.Deleted() {
					opErr = tx.Write(rid, []byte{byte(step)})
				} else {
					opErr = tx.Insert(rid, []byte{byte(step)})
				}
				if opErr != nil {
					t.Fatalf("seed %d: op: %v", seed, opErr)
				}
				switch r.Intn(4) {
				case 0:
					if err := tx.Commit(); err != nil {
						t.Fatal(err)
					}
					delete(open, idx)
				case 1:
					if err := tx.Abort(); err != nil {
						t.Fatal(err)
					}
					delete(open, idx)
				}
			}
		}
		return check(t, db, seed, everStable)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
