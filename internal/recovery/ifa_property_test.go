package recovery_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/storage"
	"smdb/internal/txn"
)

// ifaScenario drives a random workload and a random crash, then checks IFA.
type ifaScenario struct {
	Seed int64
}

// Generate implements quick.Generator.
func (ifaScenario) Generate(r *rand.Rand, _ int) interface{} {
	return ifaScenario{Seed: r.Int63()}
}

// runIFAScenario executes one random scenario under the given protocol and
// returns the violations found (nil means IFA held).
func runIFAScenario(t *testing.T, proto recovery.Protocol, seed int64) []string {
	return runIFAScenarioCfg(t, proto, seed, false)
}

func runIFAScenarioCfg(t *testing.T, proto recovery.Protocol, seed int64, chained bool) []string {
	t.Helper()
	const nodes = 4
	r := rand.New(rand.NewSource(seed))
	db, err := recovery.New(recovery.Config{
		Machine:        machine.Config{Nodes: nodes, Lines: 4096},
		Protocol:       proto,
		LinesPerPage:   4,
		RecsPerLine:    4,
		Pages:          8,
		LockTableLines: 512,
		ChainedLCBs:    chained,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr := txn.NewManager(db)
	layout := db.Store.Layout
	totalSlots := db.Store.NPages * layout.SlotsPerPage()

	// Seed and checkpoint every slot.
	init, err := mgr.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	allRIDs := make([]heap.RID, totalSlots)
	for i := range allRIDs {
		allRIDs[i] = heap.RID{Page: storage.PageID(i / layout.SlotsPerPage()), Slot: uint16(i % layout.SlotsPerPage())}
		if err := init.Insert(allRIDs[i], []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := init.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(0); err != nil {
		t.Fatal(err)
	}

	// Random transactions with disjoint slot sets (conflicts are exercised
	// in the directed tests; here physical line sharing is the point).
	nTxns := nodes * 3
	txns := make([]*txn.Txn, nTxns)
	for i := range txns {
		tx, err := mgr.Begin(machine.NodeID(i % nodes))
		if err != nil {
			t.Fatal(err)
		}
		txns[i] = tx
		for s := i; s < totalSlots; s += nTxns {
			if r.Intn(3) != 0 {
				continue
			}
			var opErr error
			switch r.Intn(5) {
			case 0:
				opErr = tx.Delete(allRIDs[s])
			default:
				opErr = tx.Write(allRIDs[s], []byte{byte(10 + i), byte(r.Intn(256))})
			}
			if opErr != nil {
				t.Fatalf("seed %d: op on %v: %v", seed, allRIDs[s], opErr)
			}
			// Occasionally overwrite the same slot again.
			if r.Intn(4) == 0 {
				if err := tx.Write(allRIDs[s], []byte{byte(10 + i), 99}); err != nil {
					t.Fatalf("seed %d: rewrite: %v", seed, err)
				}
			}
		}
		// Occasionally steal a random page to disk mid-flight.
		if r.Intn(3) == 0 {
			p := storage.PageID(r.Intn(db.Store.NPages))
			if err := db.BM.FlushPage(tx.Node(), p); err != nil && !errors.Is(err, machine.ErrLineLost) {
				t.Fatalf("seed %d: flush: %v", seed, err)
			}
		}
	}
	// Random outcomes: commit / abort / leave active.
	for _, tx := range txns {
		switch r.Intn(5) {
		case 0, 1:
			if err := tx.Commit(); err != nil {
				t.Fatalf("seed %d: commit: %v", seed, err)
			}
		case 2:
			if err := tx.Abort(); err != nil {
				t.Fatalf("seed %d: abort: %v", seed, err)
			}
		}
	}
	// Mid-run checkpoint sometimes.
	if r.Intn(3) == 0 {
		if err := db.Checkpoint(0); err != nil {
			t.Fatalf("seed %d: checkpoint: %v", seed, err)
		}
	}

	// Crash a random proper, non-empty subset of nodes.
	perm := r.Perm(nodes)
	nCrash := 1 + r.Intn(nodes-1)
	crashed := make([]machine.NodeID, 0, nCrash)
	for _, p := range perm[:nCrash] {
		crashed = append(crashed, machine.NodeID(p))
	}
	db.Crash(crashed...)
	if _, err := db.Recover(crashed); err != nil {
		t.Fatalf("seed %d: recover: %v", seed, err)
	}
	survivor := db.M.AliveNodes()[0]
	if v := db.CheckIFA(survivor); len(v) != 0 {
		return v
	}

	// A second failure after recovery must also preserve IFA (unless it
	// would take down the last node).
	aliveNow := db.M.AliveNodes()
	if len(aliveNow) >= 2 && r.Intn(2) == 0 {
		second := aliveNow[r.Intn(len(aliveNow))]
		db.Crash(second)
		if _, err := db.Recover([]machine.NodeID{second}); err != nil {
			t.Fatalf("seed %d: second recover: %v", seed, err)
		}
		return db.CheckIFA(db.M.AliveNodes()[0])
	}
	return nil
}

// TestQuickIFAUnderRandomCrashes: for every IFA protocol, random workloads
// plus random crash sets never violate isolated failure atomicity.
func TestQuickIFAUnderRandomCrashes(t *testing.T) {
	for _, proto := range ifaProtocols {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			f := func(s ifaScenario) bool {
				v := runIFAScenario(t, proto, s.Seed)
				for _, msg := range v {
					t.Logf("seed %d: %s", s.Seed, msg)
				}
				return len(v) == 0
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestQuickIFAChainedLCBs runs the random-crash property with the
// multi-line lock-table organization: broken chains are dropped and rebuilt
// without ever violating IFA.
func TestQuickIFAChainedLCBs(t *testing.T) {
	f := func(s ifaScenario) bool {
		v := runIFAScenarioCfg(t, recovery.VolatileSelectiveRedo, s.Seed, true)
		for _, msg := range v {
			t.Logf("seed %d: %s", s.Seed, msg)
		}
		return len(v) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestQuickBaselineAtomicity: the baseline still guarantees plain failure
// atomicity — every active transaction aborts, committed work survives.
func TestQuickBaselineAtomicity(t *testing.T) {
	f := func(s ifaScenario) bool {
		const nodes = 3
		r := rand.New(rand.NewSource(s.Seed))
		db, err := recovery.New(recovery.Config{
			Machine:        machine.Config{Nodes: nodes, Lines: 4096},
			Protocol:       recovery.BaselineFA,
			LinesPerPage:   4,
			RecsPerLine:    4,
			Pages:          4,
			LockTableLines: 512,
		})
		if err != nil {
			t.Fatal(err)
		}
		mgr := txn.NewManager(db)
		layout := db.Store.Layout
		total := db.Store.NPages * layout.SlotsPerPage()
		init, _ := mgr.Begin(0)
		for i := 0; i < total; i++ {
			rid := heap.RID{Page: storage.PageID(i / layout.SlotsPerPage()), Slot: uint16(i % layout.SlotsPerPage())}
			if err := init.Insert(rid, []byte{1}); err != nil {
				t.Fatal(err)
			}
		}
		if err := init.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := db.Checkpoint(0); err != nil {
			t.Fatal(err)
		}
		var active []*txn.Txn
		for i := 0; i < 6; i++ {
			tx, _ := mgr.Begin(machine.NodeID(i % nodes))
			rid := heap.RID{Page: storage.PageID(i % db.Store.NPages), Slot: uint16(i)}
			if err := tx.Write(rid, []byte{byte(50 + i)}); err != nil {
				t.Fatal(err)
			}
			if r.Intn(2) == 0 {
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			} else {
				active = append(active, tx)
			}
		}
		db.Crash(machine.NodeID(r.Intn(nodes)))
		rep, err := db.Recover(nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Aborted) != len(active) {
			t.Logf("seed %d: aborted %d, want %d", s.Seed, len(rep.Aborted), len(active))
			return false
		}
		for _, tx := range active {
			if st, _ := db.Status(tx.ID()); st != recovery.TxnAborted {
				return false
			}
		}
		return len(db.VerifyCommittedDurability(0)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
