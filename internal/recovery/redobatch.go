package recovery

import (
	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/wal"
)

// Batched redo apply. The per-record apply path paid one residency probe,
// one db.mu round-trip (undo-tag restoration), and one stripe
// acquire/release per candidate — E20 attributed most of the apply phase's
// cost to exactly that per-record overhead, not to the slot writes.
// Candidates arrive grouped (the candidate list sequentially, one page's
// bucket under the parallel pipeline), and consecutive candidates very often
// share a cache line, so the batched path carves the list into maximal
// contiguous same-line runs and pays each overhead once per run: one
// residency probe and fetch, one db.mu section precomputing every undo tag,
// one GetLine covering all of the run's version checks and slot writes.
//
// Equivalence: candidates are applied in exactly the list order the
// per-record path used, and every version-check decision reads the same slot
// state (the line is quiesced during the apply phase — crashes fire only at
// phase boundaries while recovery runs), so RedoApplied/RedoSkipped and the
// final images are bit-identical; only machine-level fetch/acquisition
// counts change, which the equivalence gate deliberately excludes. Undo tags
// are precomputed *before* the line is taken because db.mu must never be
// acquired while a stripe is held: machine.Crash holds every stripe when it
// calls noteCrash, which takes db.mu — the reverse order would deadlock.

// redoRun is one maximal contiguous stretch of redo candidates that share a
// cache line (hence a page) and a replaying node.
type redoRun struct {
	onto   machine.NodeID
	line   machine.LineID
	lo, hi int // candidate index range [lo, hi)
}

// carveRuns splits cands into contiguous same-(line, onto) runs, reusing
// the arena's run buffer.
func (db *DB) carveRuns(cands []redoCand, ar *recArena) ([]redoRun, error) {
	runs := ar.runs[:0]
	for i, c := range cands {
		line, _, err := db.Store.LineOf(heap.RID{Page: c.rec.Page, Slot: c.rec.Slot})
		if err != nil {
			return nil, err
		}
		if n := len(runs); n > 0 && runs[n-1].line == line && runs[n-1].onto == c.onto {
			runs[n-1].hi = i + 1
			continue
		}
		runs = append(runs, redoRun{onto: c.onto, line: line, lo: i, hi: i + 1})
	}
	ar.runs = runs
	return runs, nil
}

// applyRedoSlice applies one candidate list (the whole list sequentially;
// one page's bucket under the parallel pipeline) run by run, in list order.
func (db *DB) applyRedoSlice(cands []redoCand, rep *RecoveryReport, ar *recArena) error {
	runs, err := db.carveRuns(cands, ar)
	if err != nil {
		return err
	}
	for _, r := range runs {
		if err := db.applyRedoRun(cands[r.lo:r.hi], r.onto, r.line, rep, ar); err != nil {
			return err
		}
	}
	return nil
}

// applyRedoRun applies one same-line run under a single stripe acquisition.
func (db *DB) applyRedoRun(run []redoCand, onto machine.NodeID, line machine.LineID, rep *RecoveryReport, ar *recArena) error {
	page := run[0].rec.Page
	// Selective Redo's residency probe (the "cache miss with I/O disabled"
	// test), once per run: if the line was lost, the page fetch reinstalls
	// exactly the missing lines from the stable database before any version
	// check runs against it.
	if !db.M.Resident(line) || !db.M.Resident(db.Store.HeaderLine(page)) {
		if err := db.BM.Fetch(onto, page); err != nil {
			return err
		}
	}
	needTags := db.Cfg.Protocol.UndoTagging()
	if needTags {
		// One db.mu section restores every tag decision for the run (see the
		// lock-order note above: this must precede GetLine). A tag survives
		// only if the updating transaction is still active on a surviving
		// node — its update stays uncommitted through recovery.
		tags := ar.tags[:0]
		db.mu.Lock()
		for _, c := range run {
			tag := machine.NoNode
			if c.rec.Type == wal.TypeUpdate && c.rec.NTA == 0 {
				if st, ok := db.txns[c.rec.Txn]; ok && st.status == TxnActive && !st.crashed {
					tag = c.rec.Txn.Node()
				}
			}
			tags = append(tags, tag)
		}
		db.mu.Unlock()
		ar.tags = tags
	}
	if err := db.M.GetLine(onto, line); err != nil {
		return err
	}
	applied, skipped, bytes := 0, 0, 0
	var werr error
	for k, c := range run {
		rid := heap.RID{Page: c.rec.Page, Slot: c.rec.Slot}
		cur, err := db.Store.ReadSlot(onto, rid)
		if err != nil {
			werr = err
			break
		}
		if cur.Version >= c.rec.Version {
			skipped++
			continue
		}
		flags, data := splitImage(c.rec.After)
		tag := machine.NoNode
		if needTags {
			tag = ar.tags[k]
		}
		if err := db.Store.WriteSlot(onto, rid, heap.SlotData{
			Tag: tag, Flags: flags, Version: c.rec.Version, Data: data,
		}); err != nil {
			werr = err
			break
		}
		applied++
		bytes += len(c.rec.After)
	}
	db.mustRelease(onto, line)
	if applied > 0 {
		db.BM.MarkDirty(page)
	}
	rep.RedoApplied += applied
	rep.RedoSkipped += skipped
	// Skips consume planned candidates too: progress counts toward the
	// Plan() total either way, keeping the ETA honest.
	db.wfProgress().Note(obs.PhaseRedoApply.String(), applied+skipped, bytes)
	return werr
}
