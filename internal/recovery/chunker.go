package recovery

// Work-stealing chunk balancer for the parallel restart pipeline. The old
// fan-out handed tasks to workers one index at a time through an atomic
// counter — correct, but each handout is a cross-core cache-line bounce, and
// with per-node or per-bucket tasks of wildly different sizes the last big
// task routinely ran alone while every other worker idled (the E20 tail).
// balanceChunks instead pre-cuts the index space into contiguous,
// weight-balanced chunks several times finer than the worker count; workers
// then steal whole chunks through one atomic cursor. Big buckets split
// across enough chunk boundaries that no single steal dominates the tail,
// and small tasks amortize the handout cost.
//
// Determinism: the cut points are a pure function of (n, workers, grain,
// weights) — no scheduling input — and the executor still records results
// per task index, so which worker ran a chunk never shows in the merge
// order. The equivalence gate runs identical at every grain.

// chunk is one contiguous task-index range [lo, hi).
type chunk struct{ lo, hi int }

// defaultStealGrain is the target number of chunks per worker when the
// config does not say otherwise: fine enough to keep the steal queue deep
// (a worker stuck on a heavy chunk strands at most ~1/grain of the total
// weight), coarse enough that cursor traffic stays negligible.
const defaultStealGrain = 4

// balanceChunks cuts [0, n) into contiguous chunks whose weights are as
// even as a greedy single pass can make them, targeting about workers*grain
// chunks. weight(i) is task i's load estimate (nil = unit weights; negative
// estimates count as zero). grain <= 0 selects defaultStealGrain, except
// grain == -1 which degrades to one task per chunk — the pre-chunking
// dispatch, kept selectable so experiment E23 can A/B the two under the
// same executor.
func balanceChunks(n, workers, grain int, weight func(int) int) []chunk {
	if n <= 0 {
		return nil
	}
	if grain == -1 {
		chunks := make([]chunk, n)
		for i := range chunks {
			chunks[i] = chunk{i, i + 1}
		}
		return chunks
	}
	if grain <= 0 {
		grain = defaultStealGrain
	}
	if workers < 1 {
		workers = 1
	}
	target := workers * grain
	if target > n {
		target = n
	}
	total := 0
	if weight != nil {
		for i := 0; i < n; i++ {
			if w := weight(i); w > 0 {
				total += w
			}
		}
	} else {
		total = n
	}
	if total == 0 {
		// All-zero weights: fall back to even index ranges.
		weight, total = nil, n
	}
	// Greedy cut: close a chunk once it reaches the remaining-average
	// weight. Recomputing the average per chunk (instead of a fixed
	// total/target) keeps late chunks from starving when early tasks are
	// heavy: the remaining weight is re-spread over the remaining cuts.
	chunks := make([]chunk, 0, target)
	lo, acc, remaining := 0, 0, total
	for i := 0; i < n; i++ {
		w := 1
		if weight != nil {
			if w = weight(i); w < 0 {
				w = 0
			}
		}
		acc += w
		cutsLeft := target - len(chunks)
		// Always leave at least one task per unfilled chunk behind us.
		if cutsLeft > 1 && acc*(cutsLeft) >= remaining && n-i-1 >= cutsLeft-1 {
			chunks = append(chunks, chunk{lo, i + 1})
			lo = i + 1
			remaining -= acc
			acc = 0
		}
	}
	if lo < n {
		chunks = append(chunks, chunk{lo, n})
	}
	return chunks
}
