package recovery_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/storage"
	"smdb/internal/txn"
	"smdb/internal/workload"
)

// The sequential/parallel equivalence gate: restart recovery must produce
// identical post-recovery database images, abort sets, and Redo/Undo/lock
// counters at every worker count. Versions, TagScanLines, SimTime, and the
// phase spans are deliberately excluded — they depend on allocation order and
// interleaving, which parallelism legitimately changes (see parrestart.go).

// eqProtocols covers every real protocol (the AblatedNoLBM negative control
// deliberately breaks recovery and is excluded everywhere).
var eqProtocols = []recovery.Protocol{
	recovery.BaselineFA,
	recovery.VolatileRedoAll,
	recovery.VolatileSelectiveRedo,
	recovery.StableEager,
	recovery.StableTriggered,
}

const (
	eqNodes = 6
	eqPages = 12
	// The last eqTailPages pages are reserved for hand-opened active
	// transactions, so their locks never conflict with the committed
	// backlog the Runner generates on the head pages.
	eqTailPages = 2
)

// runEqScenario drives one seeded two-wave crash schedule against a fresh DB
// and returns a fingerprint of everything the gate compares. Two waves, with
// the first wave's victims restarted in between, exercise the
// restarted-node redo filter (a revived log carrying updates of transactions
// an earlier recovery settled as dead) on top of the single-crash paths.
func runEqScenario(t *testing.T, proto recovery.Protocol, seed int64, workers int, opts ...func(*recovery.Config)) string {
	t.Helper()
	cfg := recovery.Config{
		Machine:         machine.Config{Nodes: eqNodes, Lines: 4096},
		Protocol:        proto,
		LinesPerPage:    4,
		RecsPerLine:     4,
		Pages:           eqPages,
		LockTableLines:  128,
		RecoveryWorkers: workers,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	db, err := recovery.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr := txn.NewManager(db)
	if err := workload.Seed(db, 0); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	var fp strings.Builder
	for wave := 0; wave < 2; wave++ {
		// Committed backlog with heavy inter-node sharing on the head pages.
		r := workload.NewRunner(db, workload.Spec{
			TxnsPerNode: 5, OpsPerTxn: 6,
			ReadFraction: 0.3, SharingFraction: 0.7,
			HeapPages: eqPages - eqTailPages,
			Seed:      seed*101 + int64(wave),
		})
		if _, err := r.Run(); err != nil {
			t.Fatalf("wave %d workload: %v", wave, err)
		}
		// One open transaction per node on this wave's tail page: the ones
		// on crashing nodes exercise undo (and tag-scan undo under Selective
		// Redo), the surviving ones lock replay and tag legitimacy. Slots
		// straddle cache lines (RecsPerLine=4, 6 nodes), so the tagged lines
		// migrate between nodes.
		tailPage := storage.PageID(eqPages - 1 - wave)
		for n := 0; n < eqNodes; n++ {
			tx, err := mgr.Begin(machine.NodeID(n))
			if err != nil {
				t.Fatal(err)
			}
			rid := heap.RID{Page: tailPage, Slot: uint16(n)}
			if err := tx.Write(rid, []byte{byte(0xA0 + wave), byte(n)}); err != nil {
				t.Fatalf("wave %d active write node %d: %v", wave, n, err)
			}
			// Deliberately left open across the crash.
		}
		// Seeded victims: 1-2 nodes, at least two survivors.
		nVictims := 1 + rng.Intn(2)
		perm := rng.Perm(eqNodes)
		victims := make([]machine.NodeID, 0, nVictims)
		for _, p := range perm[:nVictims] {
			victims = append(victims, machine.NodeID(p))
		}
		db.Crash(victims...)
		rep, err := db.Recover(victims)
		if err != nil {
			t.Fatalf("wave %d recover (workers=%d): %v", wave, workers, err)
		}
		fmt.Fprintf(&fp, "wave%d crashed=%v aborted=%v redo=%d/%d undo=%d locks=%d lcb=%d released=%d chains=%d\n",
			wave, rep.Crashed, rep.Aborted, rep.RedoApplied, rep.RedoSkipped,
			rep.UndoApplied, rep.LocksReplayed, rep.LCBsReinstalled,
			rep.LockEntriesReleased, rep.LCBChainsDropped)
		for _, v := range victims {
			if !db.M.Alive(v) { // the baseline reboot restarts everyone itself
				if err := db.RestartNode(v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// The full logical database image, read from node 0 (all nodes are back
	// up). Flags, undo tag, and data are compared; versions are not.
	for p := 0; p < eqPages; p++ {
		for s := 0; s < db.Store.Layout.RecsPerLine*(db.Cfg.LinesPerPage-1); s++ {
			rid := heap.RID{Page: storage.PageID(p), Slot: uint16(s)}
			sd, err := db.Read(0, rid)
			if err != nil {
				t.Fatalf("final read %v: %v", rid, err)
			}
			fmt.Fprintf(&fp, "%v flags=%d tag=%d data=%x\n", rid, sd.Flags, sd.Tag, sd.Data)
		}
	}
	return fp.String()
}

// TestParallelRecoveryEquivalence is the acceptance gate: for every protocol
// and 8 seeded crash schedules, the parallel pipeline (4 workers) must be
// outcome-identical to the sequential one.
func TestParallelRecoveryEquivalence(t *testing.T) {
	for _, proto := range eqProtocols {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 8; seed++ {
				seq := runEqScenario(t, proto, seed, 0)
				par := runEqScenario(t, proto, seed, 4)
				if seq != par {
					t.Errorf("seed %d: sequential and parallel recovery diverge\n--- sequential ---\n%s--- parallel(4) ---\n%s",
						seed, seq, par)
				}
			}
		})
	}
}

// TestParallelRecoveryEquivalenceVariants re-runs the gate under the PR-9
// performance machinery: epoch/group commit forces during the workload, and
// the steal grain at both extremes (per-item dispatch vs. coarse chunks).
// Each variant compares sequential against parallel under the *same* config —
// group forces legitimately change which records are stable at the crash, so
// cross-config fingerprints are not comparable, but seq/par within a config
// must still be bit-identical.
func TestParallelRecoveryEquivalenceVariants(t *testing.T) {
	variants := []struct {
		name string
		opt  func(*recovery.Config)
	}{
		{"groupforce", func(c *recovery.Config) { c.GroupCommitForces = true }},
		{"grain-peritem", func(c *recovery.Config) { c.RecoveryStealGrain = -1 }},
		{"grain-coarse", func(c *recovery.Config) { c.RecoveryStealGrain = 1 }},
		{"groupforce+grain", func(c *recovery.Config) {
			c.GroupCommitForces = true
			c.RecoveryStealGrain = -1
		}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				seq := runEqScenario(t, recovery.VolatileSelectiveRedo, seed, 0, v.opt)
				par := runEqScenario(t, recovery.VolatileSelectiveRedo, seed, 4, v.opt)
				if seq != par {
					t.Errorf("seed %d: sequential and parallel recovery diverge under %s\n--- sequential ---\n%s--- parallel(4) ---\n%s",
						seed, v.name, seq, par)
				}
			}
		})
	}
}

// TestParallelRecoveryWorkerSweep pins the knob itself: worker counts beyond
// the fan-out width and a degenerate single-survivor config must still be
// outcome-identical, and the report must record the fan-out actually used.
func TestParallelRecoveryWorkerSweep(t *testing.T) {
	base := runEqScenario(t, recovery.VolatileSelectiveRedo, 3, 0)
	for _, w := range []int{2, 8, 64} {
		if got := runEqScenario(t, recovery.VolatileSelectiveRedo, 3, w); got != base {
			t.Errorf("workers=%d diverges from sequential:\n--- sequential ---\n%s--- workers=%d ---\n%s",
				w, base, w, got)
		}
	}
}

// TestParallelReportFields checks the parallel-run bookkeeping: Workers and
// the per-phase fan-out spans appear on a parallel run and stay empty on a
// sequential one.
func TestParallelReportFields(t *testing.T) {
	for _, workers := range []int{0, 4} {
		db, err := recovery.New(recovery.Config{
			Machine:         machine.Config{Nodes: 4, Lines: 2048},
			Protocol:        recovery.VolatileSelectiveRedo,
			LinesPerPage:    4,
			RecsPerLine:     4,
			Pages:           8,
			LockTableLines:  64,
			RecoveryWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.Seed(db, 0); err != nil {
			t.Fatal(err)
		}
		r := workload.NewRunner(db, workload.Spec{TxnsPerNode: 4, OpsPerTxn: 4, SharingFraction: 0.8, Seed: 9})
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
		victim := machine.NodeID(3)
		db.Crash(victim)
		rep, err := db.Recover([]machine.NodeID{victim})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Workers != workers {
			t.Errorf("workers=%d: rep.Workers = %d", workers, rep.Workers)
		}
		if workers == 0 && len(rep.ParPhases) != 0 {
			t.Errorf("sequential run recorded parallel spans: %+v", rep.ParPhases)
		}
		if workers > 1 {
			if len(rep.ParPhases) == 0 {
				t.Errorf("parallel run recorded no fan-out spans")
			}
			for _, pp := range rep.ParPhases {
				if pp.Fanout < 2 || pp.Fanout > workers {
					t.Errorf("fan-out span %v outside [2,%d]", pp, workers)
				}
			}
		}
	}
}
