// Package recovery implements the paper's contribution: crash-recovery
// protocols for cache-coherent shared-memory database systems that guarantee
// Isolated Failure Atomicity (IFA). If one or more nodes crash, all effects
// of active transactions on the crashed nodes are undone, and no effects of
// transactions on surviving nodes are lost — avoiding the unnecessary
// transaction aborts a conventional (reboot-the-box) recovery design incurs.
//
// The package combines:
//
//   - Logging-Before-Migration (LBM) policies enforced in the update
//     protocol (section 4.1.1 / 5): Volatile LBM pins the updated line with
//     a line lock until the volatile log record is written; Stable LBM
//     additionally forces the log — either eagerly on every update, or
//     lazily via the section 5.2 coherency trigger that forces exactly when
//     an active line is about to migrate, downgrade, or be invalidated.
//
//   - Restart recovery schemes (section 4.1.2): Redo All (survivors flush
//     their caches and replay their redo logs) and Selective Redo
//     (survivors redo only updates that resided solely on crashed nodes,
//     then undo crashed transactions' updates found in surviving caches via
//     per-record undo tags).
//
//   - The corresponding treatment of database support structures: the
//     shared-memory lock space (release crashed transactions' locks, rebuild
//     destroyed LCBs from logged — including read — lock acquisitions) and
//     early-committed structural changes (nested top-level actions).
//
//   - A conventional failure-atomicity baseline (system reboot on any node
//     crash) against which the IFA protocols are measured.
package recovery

import "fmt"

// Protocol selects a complete recovery protocol: an LBM policy paired with a
// restart scheme, with the paper's Table 1 determining which runtime
// overheads each incurs.
type Protocol int

const (
	// BaselineFA is the conventional protocol: per-node WAL with commit
	// forces, no LBM provisions, no read-lock logging, no undo tags, no
	// early commit of structural changes. A single node crash forces a
	// whole-machine reboot, aborting every active transaction — failure
	// atomicity without isolation.
	BaselineFA Protocol = iota
	// VolatileRedoAll is Volatile LBM with the Redo All restart scheme:
	// survivors discard all cached database lines and replay their redo
	// logs. No undo tags needed; recovery does more redo work.
	VolatileRedoAll
	// VolatileSelectiveRedo is Volatile LBM with Selective Redo: records
	// carry undo tags (node IDs) in their cache lines; survivors redo only
	// what was lost and undo crashed transactions' updates in place.
	VolatileSelectiveRedo
	// StableEager is Stable LBM enforced by forcing the log within every
	// update's critical section — correct but with a log force per update.
	StableEager
	// StableTriggered is Stable LBM enforced by the section 5.2 hardware
	// extension: a per-line active bit triggers a log force only when an
	// active line is about to leave its updater's failure domain.
	StableTriggered
	// AblatedNoLBM is a negative control, not one of the paper's
	// protocols: update logging is deferred to commit time, so no
	// logging-before-migration happens at all, while everything else
	// (restart machinery, read-lock logging, early structural commit)
	// stays in place. It exists to demonstrate — and let the IFA checker
	// catch — exactly the failures LBM prevents: an uncommitted update
	// that migrated to a survivor cannot be undone after its node
	// crashes, and a surviving transaction's update that migrated to a
	// crashed node cannot be redone. Voluntary aborts of transactions
	// with writes are unsupported under this variant.
	AblatedNoLBM
)

var protocolNames = map[Protocol]string{
	BaselineFA:            "baseline-fa",
	VolatileRedoAll:       "volatile-lbm/redo-all",
	VolatileSelectiveRedo: "volatile-lbm/selective-redo",
	StableEager:           "stable-lbm/eager",
	StableTriggered:       "stable-lbm/triggered",
	AblatedNoLBM:          "ablated/no-lbm",
}

func (p Protocol) String() string {
	if s, ok := protocolNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// ParseProtocol maps a String() rendering back to its Protocol — the form
// recorded in chaos schedule files.
func ParseProtocol(s string) (Protocol, bool) {
	for p, name := range protocolNames {
		if name == s {
			return p, true
		}
	}
	return 0, false
}

// Protocols lists every protocol, in presentation order.
func Protocols() []Protocol {
	return []Protocol{BaselineFA, VolatileRedoAll, VolatileSelectiveRedo, StableEager, StableTriggered}
}

// IFA reports whether the protocol guarantees isolated failure atomicity.
func (p Protocol) IFA() bool { return p != BaselineFA && p != AblatedNoLBM }

// UndoTagging reports whether the protocol writes per-record undo tags
// (Table 1: only Volatile LBM with Selective Redo).
func (p Protocol) UndoTagging() bool { return p == VolatileSelectiveRedo }

// LogsReadLocks reports whether shared-lock acquisitions are logged
// (Table 1: all IFA protocols; the ablation keeps it so the lock space is
// not a confound).
func (p Protocol) LogsReadLocks() bool { return p.IFA() || p == AblatedNoLBM }

// EarlyCommitsStructural reports whether structural changes are committed
// (forced) before other transactions may use their results (Table 1: all
// IFA protocols; kept by the ablation for the same reason as read locks).
func (p Protocol) EarlyCommitsStructural() bool { return p.IFA() || p == AblatedNoLBM }

// StableLBM reports whether the protocol forces log records to stable store
// before uncommitted data can migrate.
func (p Protocol) StableLBM() bool { return p == StableEager || p == StableTriggered }

// SelectiveRedo reports whether restart uses the Selective Redo scheme.
// (Stable LBM pairs with Selective Redo here: with stable undo available it
// never needs the cache flush of Redo All.)
func (p Protocol) SelectiveRedo() bool {
	return p == VolatileSelectiveRedo || p == StableEager || p == StableTriggered || p == AblatedNoLBM
}

// DeferredLogging reports whether update logging is postponed to commit —
// only true for the AblatedNoLBM negative control.
func (p Protocol) DeferredLogging() bool { return p == AblatedNoLBM }
