package recovery_test

import (
	"testing"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/recovery"
)

// The ablation tests run the paper's figure 2 scenario with LBM disabled
// (AblatedNoLBM defers update logging to commit) and confirm that the IFA
// checker catches exactly the failures the paper predicts — demonstrating
// both that logging-before-migration is load-bearing and that the oracle is
// capable of failing.

// TestAblationUndoHazard: t_x's uncommitted update migrates to node y; node
// x crashes. Without LBM no undo information exists anywhere, so the
// update survives — an IFA violation the checker must report.
func TestAblationUndoHazard(t *testing.T) {
	r1 := heap.RID{Page: 0, Slot: 0}
	r2 := heap.RID{Page: 0, Slot: 1}
	db, mgr := newDB(t, recovery.AblatedNoLBM, 2)
	seed(t, mgr, []heap.RID{r1, r2}, 1)

	tx, _ := mgr.Begin(0)
	ty, _ := mgr.Begin(1)
	if err := tx.Write(r1, []byte{100}); err != nil {
		t.Fatal(err)
	}
	if err := ty.Write(r2, []byte{200}); err != nil { // migrates the line to node 1
		t.Fatal(err)
	}
	db.Crash(0)
	if _, err := db.Recover([]machine.NodeID{0}); err != nil {
		t.Fatal(err)
	}
	// The crashed transaction's effect is still there (the hazard).
	got, err := db.Read(1, r1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0] != 100 {
		t.Fatalf("expected the hazard: t_x's unlogged update should have survived, got %d", got.Data[0])
	}
	v := db.CheckIFA(1)
	if len(v) == 0 {
		t.Fatal("IFA checker did not flag the surviving uncommitted update")
	}
	t.Logf("checker correctly reported: %v", v)
}

// TestAblationRedoHazard: the line holding t_x's update migrated to node y
// and node y crashes. Without LBM, no redo information was logged before
// the migration, so the surviving transaction t_x silently loses its
// update.
func TestAblationRedoHazard(t *testing.T) {
	r1 := heap.RID{Page: 0, Slot: 0}
	r2 := heap.RID{Page: 0, Slot: 1}
	db, mgr := newDB(t, recovery.AblatedNoLBM, 2)
	seed(t, mgr, []heap.RID{r1, r2}, 1)

	tx, _ := mgr.Begin(0)
	ty, _ := mgr.Begin(1)
	if err := tx.Write(r1, []byte{100}); err != nil {
		t.Fatal(err)
	}
	if err := ty.Write(r2, []byte{200}); err != nil {
		t.Fatal(err)
	}
	db.Crash(1)
	if _, err := db.Recover([]machine.NodeID{1}); err != nil {
		t.Fatal(err)
	}
	// t_x is alive, but its update died with node y's cache.
	got, err := db.Read(0, r1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0] == 100 {
		t.Fatal("expected the hazard: t_x's update should have been lost with node y")
	}
	v := db.CheckIFA(0)
	if len(v) == 0 {
		t.Fatal("IFA checker did not flag the lost surviving update")
	}
	t.Logf("checker correctly reported: %v", v)
}

// TestAblationControl: the same scenario under the real protocol shows zero
// violations — the only difference is LBM.
func TestAblationControl(t *testing.T) {
	r1 := heap.RID{Page: 0, Slot: 0}
	r2 := heap.RID{Page: 0, Slot: 1}
	for _, crash := range []machine.NodeID{0, 1} {
		db, mgr := newDB(t, recovery.VolatileSelectiveRedo, 2)
		seed(t, mgr, []heap.RID{r1, r2}, 1)
		tx, _ := mgr.Begin(0)
		ty, _ := mgr.Begin(1)
		if err := tx.Write(r1, []byte{100}); err != nil {
			t.Fatal(err)
		}
		if err := ty.Write(r2, []byte{200}); err != nil {
			t.Fatal(err)
		}
		db.Crash(crash)
		if _, err := db.Recover([]machine.NodeID{crash}); err != nil {
			t.Fatal(err)
		}
		mustCheckIFA(t, db, 1-crash)
	}
}

// TestAblationCommittedStillDurable: even without LBM, committed work
// survives (commit-time logging plus the force is intact) — the ablation
// breaks isolation of failures, not durability.
func TestAblationCommittedStillDurable(t *testing.T) {
	rid := heap.RID{Page: 0, Slot: 0}
	db, mgr := newDB(t, recovery.AblatedNoLBM, 2)
	seed(t, mgr, []heap.RID{rid}, 1)
	tx, _ := mgr.Begin(1)
	if err := tx.Write(rid, []byte{42}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Crash(1)
	if _, err := db.Recover([]machine.NodeID{1}); err != nil {
		t.Fatal(err)
	}
	got, err := db.Read(0, rid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0] != 42 {
		t.Errorf("committed value lost under ablation: %d", got.Data[0])
	}
}

// TestAblationAbortUnsupported: voluntary aborts of writers are rejected
// (there is no undo information to roll back with).
func TestAblationAbortUnsupported(t *testing.T) {
	rid := heap.RID{Page: 0, Slot: 0}
	db, mgr := newDB(t, recovery.AblatedNoLBM, 1)
	seed(t, mgr, []heap.RID{rid}, 1)
	tx, _ := mgr.Begin(0)
	if err := tx.Write(rid, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := db.Abort(0, tx.ID()); err == nil {
		t.Error("abort of a writer succeeded without undo information")
	}
}
