package recovery_test

import (
	"fmt"
	"testing"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/recovery"
	"smdb/internal/txn"
)

func benchDB(b *testing.B, proto recovery.Protocol) (*recovery.DB, *txn.Manager) {
	b.Helper()
	db, err := recovery.New(recovery.Config{
		Machine:        machine.Config{Nodes: 4, Lines: 4096},
		Protocol:       proto,
		LinesPerPage:   8,
		RecsPerLine:    4,
		Pages:          32,
		LockTableLines: 1024,
	})
	if err != nil {
		b.Fatal(err)
	}
	mgr := txn.NewManager(db)
	setup, err := mgr.Begin(0)
	if err != nil {
		b.Fatal(err)
	}
	for s := 0; s < db.Store.Layout.SlotsPerPage(); s++ {
		if err := setup.Insert(heap.RID{Page: 0, Slot: uint16(s)}, []byte{1}); err != nil {
			b.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		b.Fatal(err)
	}
	if err := db.Checkpoint(0); err != nil {
		b.Fatal(err)
	}
	return db, mgr
}

// BenchmarkUpdatePath measures the engine-level update protocol (line
// locks, logging, tagging) per protocol — the real-time cost of the code
// path whose simulated cost E4 reports.
func BenchmarkUpdatePath(b *testing.B) {
	for _, proto := range []recovery.Protocol{
		recovery.BaselineFA,
		recovery.VolatileSelectiveRedo,
		recovery.StableEager,
		recovery.StableTriggered,
	} {
		b.Run(proto.String(), func(b *testing.B) {
			db, mgr := benchDB(b, proto)
			tx, err := mgr.Begin(1)
			if err != nil {
				b.Fatal(err)
			}
			rid := heap.RID{Page: 0, Slot: 3}
			if err := tx.Write(rid, []byte{2}); err != nil { // take the lock once
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Update(1, tx.ID(), rid, []byte{byte(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTxnCommit measures a short read-modify-write transaction end to
// end including the commit force.
func BenchmarkTxnCommit(b *testing.B) {
	_, mgr := benchDB(b, recovery.VolatileSelectiveRedo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := mgr.Begin(machine.NodeID(i % 4))
		if err != nil {
			b.Fatal(err)
		}
		rid := heap.RID{Page: 0, Slot: uint16(i % 8)}
		if _, err := tx.Read(rid); err != nil {
			b.Fatal(err)
		}
		if err := txn.Retry(func() error { return tx.Write(rid, []byte{byte(i)}) }); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecover measures a full crash + restart recovery cycle with a
// populated cache and lock space.
func BenchmarkRecover(b *testing.B) {
	for _, proto := range []recovery.Protocol{recovery.VolatileRedoAll, recovery.VolatileSelectiveRedo} {
		b.Run(proto.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db, mgr := benchDB(b, proto)
				// One in-flight transaction per node.
				for n := 0; n < 4; n++ {
					tx, err := mgr.Begin(machine.NodeID(n))
					if err != nil {
						b.Fatal(err)
					}
					if err := tx.Write(heap.RID{Page: 0, Slot: uint16(n)}, []byte{byte(n + 10)}); err != nil {
						b.Fatal(err)
					}
				}
				db.Crash(3)
				b.StartTimer()
				if _, err := db.Recover([]machine.NodeID{3}); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if v := db.CheckIFA(0); len(v) != 0 {
					b.Fatal(fmt.Sprint(v))
				}
				b.StartTimer()
			}
		})
	}
}
