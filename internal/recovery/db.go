package recovery

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"smdb/internal/buffer"
	"smdb/internal/fault"
	"smdb/internal/heap"
	"smdb/internal/lock"
	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/obs/audit"
	"smdb/internal/obs/debt"
	"smdb/internal/obs/deps"
	"smdb/internal/obs/prof"
	"smdb/internal/obs/waterfall"
	"smdb/internal/sched"
	"smdb/internal/storage"
	"smdb/internal/wal"
)

// Config parameterizes a shared-memory database instance.
type Config struct {
	// Machine configures the simulated multiprocessor. Leave zero for
	// defaults (4 nodes, 128-byte lines).
	Machine machine.Config
	// Protocol selects the recovery protocol.
	Protocol Protocol
	// LinesPerPage and RecsPerLine fix the heap layout (defaults 8 and 4;
	// RecsPerLine is the paper's records-per-cache-line sharing knob).
	LinesPerPage, RecsPerLine int
	// Pages is the heap size in pages (default 64).
	Pages int
	// LockTableLines sizes the shared-memory LCB table (default 512).
	LockTableLines int
	// ChainedLCBs lets lock control blocks span multiple cache lines (the
	// paper's harder recovery variant: a crash can destroy arbitrary
	// segments of a lock queue, and recovery rebuilds whole LCBs).
	ChainedLCBs bool
	// NVRAMLog prices log forces as NVRAM instead of rotational disk.
	NVRAMLog bool
	// DirtyReads permits reads without shared locks (browse/chaos degrees
	// of [7]); used to demonstrate the H_wr hazard of section 3.2.
	DirtyReads bool
	// RecoveryWorkers bounds the goroutine fan-out of restart recovery's
	// parallel phases (per-survivor log scans, page-partitioned redo, the
	// undo tag scan, lock replay, cache flush). 0 or 1 keeps the fully
	// sequential pipeline. Post-recovery database state, abort sets, and
	// the Redo/Undo counters are identical at every setting; only wall
	// clock (and the incidental simulated interleaving) changes.
	RecoveryWorkers int
	// RecoveryStealGrain tunes the work-stealing chunker of the parallel
	// phases: the number of chunks per worker the size balancer targets.
	// 0 means the default (4). -1 restores the pre-chunking one-task-per-
	// handout dispatch, kept for A/B attribution (experiment E23).
	RecoveryStealGrain int
	// GroupCommitForces enables epoch/group log forces: commit records
	// arriving within one epoch window coalesce into a single physical
	// Force per log (wal.Log.ForceGroup), with a group-commit leader and
	// follower wakeup. Durability is unchanged — a commit still only
	// acknowledges once its own record is stable.
	GroupCommitForces bool
	// GroupCommitWindow is the epoch leader's host-time collection wait
	// (default 200µs when GroupCommitForces is set). Ignored whenever a
	// chaos record/replay session is attached: the window then collapses
	// to one deterministic scheduler point per epoch.
	GroupCommitWindow time.Duration
}

func (c *Config) setDefaults() {
	if c.LinesPerPage == 0 {
		c.LinesPerPage = 8
	}
	if c.RecsPerLine == 0 {
		c.RecsPerLine = 4
	}
	if c.Pages == 0 {
		c.Pages = 64
	}
	if c.LockTableLines == 0 {
		c.LockTableLines = 512
	}
	if c.GroupCommitForces && c.GroupCommitWindow == 0 {
		c.GroupCommitWindow = 200 * time.Microsecond
	}
}

// TxnStatus is a transaction's lifecycle state.
type TxnStatus int

const (
	// TxnActive transactions have begun and neither committed nor aborted.
	TxnActive TxnStatus = iota
	// TxnCommitted transactions have a stable commit record.
	TxnCommitted
	// TxnAborted transactions have been rolled back (by request, deadlock,
	// or crash recovery).
	TxnAborted
)

func (s TxnStatus) String() string {
	switch s {
	case TxnActive:
		return "active"
	case TxnCommitted:
		return "committed"
	case TxnAborted:
		return "aborted"
	default:
		return fmt.Sprintf("TxnStatus(%d)", int(s))
	}
}

// heldLock records one lock held by a transaction (node-local bookkeeping;
// it lives and dies with the transaction's node).
type heldLock struct {
	name lock.Name
	mode lock.Mode
}

// writeRec records one update a transaction made (node-local bookkeeping
// plus IFA-oracle input: the after image, version, and log position).
type writeRec struct {
	rid     heap.RID
	img     []byte
	version uint64
	lsn     wal.LSN
}

// txnState is the node-local control state of one transaction. A node crash
// destroys the txnState of its transactions (the "control state (registers,
// stack, etc.)" of section 3.1); recovery must never read a crashed
// transaction's txnState — it rediscovers what it needs from stable logs and
// undo tags. The engine keeps crashed entries only for the IFA oracle
// (verification), clearly separated by the crashed flag.
type txnState struct {
	id      wal.TxnID
	status  TxnStatus
	crashed bool // its node crashed while it was active
	// beginSim is the node's simulated clock at Begin, for commit-latency
	// observation.
	beginSim int64
	locks    []heldLock
	// writes lists the updates the transaction applied (node-local; used
	// for commit-time tag clearing and by the IFA oracle).
	writes []writeRec
	// nta > 0 while a nested top-level action is open.
	nta uint64
	// global > 0 marks a branch of a parallel (multi-node) transaction.
	global uint64
	// deferred holds update records not yet appended to the log — only
	// used by the AblatedNoLBM negative control, which logs at commit.
	deferred []wal.Record
}

// Stats aggregates protocol-level counters (beyond machine/buffer/lock
// stats).
type Stats struct {
	// Updates, Inserts, Deletes are record operations applied.
	Updates, Inserts, Deletes int64
	// Commits, Aborts are completed transactions.
	Commits, Aborts int64
	// CommitForces counts commit-time physical log forces; LBMForces
	// counts forces performed to satisfy Stable LBM (eager or triggered);
	// NTAForces counts early-commit forces of structural changes.
	CommitForces, LBMForces, NTAForces int64
	// GroupCommitJoins counts commits whose force was satisfied by another
	// commit's epoch/group force (waited for a leader, or found their
	// record already stable on arrival). The physical forces they rode are
	// in CommitForces, charged to their leaders.
	GroupCommitJoins int64
	// TagWrites counts undo-tag stores (Table 1's Undo Tagging overhead);
	// TagClears counts commit/abort-time tag clears.
	TagWrites, TagClears int64
	// UndoTagBytes is the space overhead of tagging.
	UndoTagBytes int64
	// RedoApplied / RedoSkipped count restart redo decisions;
	// UndoApplied counts restart undo installations.
	RedoApplied, RedoSkipped, UndoApplied int64
	// TxnsAbortedByRecovery counts active transactions aborted by restart
	// recovery (for crashed nodes under IFA; for everyone under the
	// baseline).
	TxnsAbortedByRecovery int64
	// LCBsRebuilt and LockEntriesReleased count lock-space recovery work.
	LCBsRebuilt, LockEntriesReleased int64
}

// Sub returns the per-interval delta s - prev (see machine.Stats.Sub).
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Updates:               s.Updates - prev.Updates,
		Inserts:               s.Inserts - prev.Inserts,
		Deletes:               s.Deletes - prev.Deletes,
		Commits:               s.Commits - prev.Commits,
		Aborts:                s.Aborts - prev.Aborts,
		CommitForces:          s.CommitForces - prev.CommitForces,
		GroupCommitJoins:      s.GroupCommitJoins - prev.GroupCommitJoins,
		LBMForces:             s.LBMForces - prev.LBMForces,
		NTAForces:             s.NTAForces - prev.NTAForces,
		TagWrites:             s.TagWrites - prev.TagWrites,
		TagClears:             s.TagClears - prev.TagClears,
		UndoTagBytes:          s.UndoTagBytes - prev.UndoTagBytes,
		RedoApplied:           s.RedoApplied - prev.RedoApplied,
		RedoSkipped:           s.RedoSkipped - prev.RedoSkipped,
		UndoApplied:           s.UndoApplied - prev.UndoApplied,
		TxnsAbortedByRecovery: s.TxnsAbortedByRecovery - prev.TxnsAbortedByRecovery,
		LCBsRebuilt:           s.LCBsRebuilt - prev.LCBsRebuilt,
		LockEntriesReleased:   s.LockEntriesReleased - prev.LockEntriesReleased,
	}
}

// DB is a complete shared-memory database instance: the simulated machine
// plus every substrate, wired for one recovery protocol.
type DB struct {
	Cfg   Config
	M     *machine.Machine
	Store *heap.Store
	Disk  *storage.Disk
	BM    *buffer.Manager
	Logs  []*wal.Log
	Locks *lock.SMManager

	versions atomic.Uint64
	// frozen is set between Crash and the end of Recover: the low-level
	// machinery has interrupted all CPUs (section 2), and transaction
	// processing stalls until restart recovery completes. The transaction
	// layer surfaces the stall as ErrBlocked.
	frozen atomic.Bool
	// recovering is set for the duration of Recover: restart recovery is
	// the one actor allowed to install page images while the machine is
	// frozen. Together with frozen it drives the machine install gate that
	// keeps a worker which passed its freeze check *before* the crash from
	// reinstalling a stale disk image over destroyed lines *after* it (the
	// committed-value-lost race).
	recovering atomic.Bool

	mu    sync.Mutex
	txns  map[wal.TxnID]*txnState
	seqs  []uint64 // per-node transaction sequence counters
	stats Stats
	// committed is the IFA oracle: the last committed image of every slot
	// ever written (flags byte followed by record data), plus its version.
	committed map[heap.RID]committedImage
	// activeLBM tracks, for StableTriggered, the highest unforced LSN per
	// node so the trigger knows how far to force.
	pendingLSN []wal.LSN
	// obs is the attached observability layer (nil when disabled; all its
	// methods are nil-safe).
	obs *obs.Observer
	// deps is the attached dependency-graph tracker (nil when disabled;
	// nil-safe); see AttachDeps.
	deps *deps.Tracker
	// audit is the attached online IFA auditor (nil when disabled;
	// nil-safe); see AttachAudit.
	audit *audit.Auditor
	// flight is the attached crash flight recorder (nil when disabled;
	// nil-safe); see SetFlightRecorder.
	flight *obs.FlightRecorder
	// prof is the attached contention & cost-attribution profiler pair
	// (nil when disabled; nil-safe); see AttachProf.
	prof *prof.Pair
	// fault is the attached chaos injector (nil when chaos is off); see
	// AttachFaults.
	fault *fault.Injector
	// flightPending is set by noteCrash (no file I/O may run there — the
	// machine lock is held) and consumed at Recover entry, which writes the
	// pending crash dump.
	flightPending atomic.Bool
	// crashSim records the simulated time of the first unrecovered crash,
	// so restart recovery can report the freeze span (crash -> recovery
	// start). Reset by Recover.
	crashSim atomic.Int64
	// schedp is the attached chaos schedule record/replay session (nil when
	// disabled); see AttachSched.
	schedp atomic.Pointer[sched.Session]
	// wfp is the attached per-transaction waterfall recorder (nil when
	// disabled); see AttachWaterfall. An atomic pointer because the hot
	// paths (Update, Read, Commit) consult it outside db.mu.
	wfp atomic.Pointer[waterfall.Recorder]
	// dbtp is the attached recovery-debt tracker (nil when disabled); see
	// AttachDebt. Atomic for the same reason as wfp: Recover consults it
	// outside db.mu.
	dbtp atomic.Pointer[debt.Tracker]
	// arenas are the per-worker-slot reusable recovery scratch buffers
	// (see recArena): slot w belongs to fan-out worker slot w, slot 0 to
	// the sequential paths. Sized once at New from RecoveryWorkers, reused
	// explicitly across phases and Recover calls — no sync.Pool, so buffer
	// placement never depends on GC timing and replay stays deterministic.
	arenas []recArena
}

type committedImage struct {
	img     []byte
	version uint64
}

// New builds a database instance. It panics on invalid configuration
// (programmer error), and returns an error for resource failures.
func New(cfg Config) (*DB, error) {
	cfg.setDefaults()
	m := machine.New(cfg.Machine)
	layout, err := heap.NewLayout(m.LineSize(), cfg.LinesPerPage, cfg.RecsPerLine)
	if err != nil {
		return nil, err
	}
	store := heap.NewStore(m, layout, cfg.Pages)
	disk := storage.NewDisk(layout.PageBytes())
	logs := make([]*wal.Log, m.Nodes())
	for i := range logs {
		logs[i], err = wal.NewLog(machine.NodeID(i), storage.NewLogDevice())
		if err != nil {
			return nil, err
		}
	}
	lm := lock.LogWriteLocks
	if cfg.Protocol.LogsReadLocks() {
		lm = lock.LogAllLocks
	}
	locks, err := lock.NewSMManager(m, cfg.LockTableLines, logs, lm)
	if err != nil {
		return nil, err
	}
	locks.Chained = cfg.ChainedLCBs
	db := &DB{
		Cfg:        cfg,
		M:          m,
		Store:      store,
		Disk:       disk,
		BM:         buffer.NewManager(store, disk, logs),
		Logs:       logs,
		Locks:      locks,
		txns:       make(map[wal.TxnID]*txnState),
		seqs:       make([]uint64, m.Nodes()),
		committed:  make(map[heap.RID]committedImage),
		pendingLSN: make([]wal.LSN, m.Nodes()),
	}
	db.BM.NVRAMLog = cfg.NVRAMLog
	slots := cfg.RecoveryWorkers
	if slots < 1 {
		slots = 1
	}
	db.arenas = make([]recArena, slots)
	if cfg.GroupCommitForces {
		for _, l := range logs {
			l.EnableGroupForce(cfg.GroupCommitWindow, nil)
		}
	}
	if cfg.Protocol == StableTriggered {
		m.SetPreTransition(db.lbmTrigger)
	}
	// Every crash — requested or injected mid-transition — destroys the
	// DB-layer state of the dead nodes atomically with the machine crash.
	m.SetCrashNotify(db.noteCrash)
	// Freeze-window install gate: between a crash and restart recovery no
	// page image may (re)enter shared memory except at recovery's own hand.
	// Without it, a racing transaction that passed its freeze check just
	// before the crash can fault a partially-destroyed page back in from
	// the stale disk image, resurrecting pre-crash values over committed
	// ones. The gate runs with the line's stripe held, and frozen only
	// transitions under all stripes, so the decision cannot race the crash.
	m.SetInstallGate(func(nd machine.NodeID, l machine.LineID) error {
		if db.frozen.Load() && !db.recovering.Load() && store.Contains(l) {
			return machine.ErrLineLost
		}
		return nil
	})
	return db, nil
}

// AttachSched wires a chaos schedule record/replay session through the
// layers that expose scheduling decisions: the buffer manager's Fetch entry
// (a scheduling point — the stale-reinstall hazard window) and, when
// recording, the machine's line-lock/install annotation hook. The
// transaction layer reads the session via SchedPoint. Passing nil detaches
// everywhere.
func (db *DB) AttachSched(s *sched.Session) {
	if s == nil {
		db.schedp.Store(nil)
		db.BM.SetFetchHook(nil)
		db.M.SetSchedNote(nil)
		if db.Cfg.GroupCommitForces {
			// Back to host-time epoch windows.
			for _, l := range db.Logs {
				l.SetGroupYield(nil)
			}
		}
		return
	}
	db.schedp.Store(s)
	db.BM.SetFetchHook(func(nd machine.NodeID, p storage.PageID) {
		s.Point(int32(nd), sched.SiteFetch, int64(p))
	})
	if db.Cfg.GroupCommitForces {
		// A host-time epoch window would make the set of stable commit
		// records at a crash instant depend on scheduling; under a session
		// every group-force wait becomes one recorded point instead, so the
		// coalescing decisions replay exactly.
		for _, l := range db.Logs {
			nd := l.Node()
			l.SetGroupYield(func() {
				s.Point(int32(nd), sched.SiteGroupForce, 0)
			})
		}
	}
	if s.Recording() {
		db.M.SetSchedNote(func(nd machine.NodeID, site string, l machine.LineID) {
			s.Note(int32(nd), site, int64(l))
		})
	} else {
		db.M.SetSchedNote(nil)
	}
}

// Sched returns the attached schedule session (possibly nil).
func (db *DB) Sched() *sched.Session { return db.schedp.Load() }

// SchedPoint forwards a scheduling decision to the attached session. With
// none attached (or outside an episode's armed window) it returns arg
// unchanged at the cost of one atomic load.
func (db *DB) SchedPoint(actor int32, site string, arg int64) int64 {
	return db.schedp.Load().Point(actor, site, arg)
}

// AttachObserver wires the observability layer through every engine
// substrate: the machine (coherency, line locks, crashes), each node's WAL,
// the lock manager, the buffer manager, and the protocol layer itself
// (transaction lifecycle, recovery phases). Call before running work;
// passing nil detaches everywhere.
func (db *DB) AttachObserver(o *obs.Observer) {
	db.M.SetObserver(o)
	for _, l := range db.Logs {
		l := l
		node := l.Node()
		var fn func() int64
		if o != nil {
			fn = func() int64 { return db.M.Clock(node) }
		}
		l.SetObserver(o, fn)
	}
	db.Locks.SetObserver(o)
	db.BM.SetObserver(o)
	db.mu.Lock()
	db.obs = o
	db.mu.Unlock()
}

// Observer returns the attached observability layer (nil when disabled).
func (db *DB) Observer() *obs.Observer {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.obs
}

// AttachDeps wires a dependency-graph tracker: it becomes the observer's
// event sink (so coherency, WAL, and txn-lifecycle events flow into it) and
// receives the recovery layer's direct write/crash/recovered notifications.
// Call after AttachObserver — the tracker needs the event stream to maintain
// line residency. Passing nil detaches.
func (db *DB) AttachDeps(t *deps.Tracker) {
	db.mu.Lock()
	db.deps = t
	db.rewireSinkLocked()
	db.mu.Unlock()
}

// AttachAudit wires an online IFA auditor: it joins the observer's event
// sink (alongside the dependency tracker, if one is attached) and receives
// the recovery layer's direct write/crash/recovered notifications, so it
// can check the logging-before-migration invariant on every coherency
// transition while the workload runs. Call after AttachObserver — the
// auditor needs the event stream. Passing nil detaches.
func (db *DB) AttachAudit(a *audit.Auditor) {
	db.mu.Lock()
	db.audit = a
	db.rewireSinkLocked()
	db.mu.Unlock()
}

// rewireSinkLocked points the observer's single sink at whichever of the
// dependency tracker and the auditor are attached (a MultiSink when both
// are). Caller holds db.mu.
func (db *DB) rewireSinkLocked() {
	o := db.obs
	if o == nil {
		return
	}
	switch {
	case db.deps != nil && db.audit != nil:
		o.SetSink(obs.MultiSink{db.deps, db.audit})
	case db.deps != nil:
		o.SetSink(db.deps)
	case db.audit != nil:
		o.SetSink(db.audit)
	default:
		o.SetSink(nil)
	}
}

// Deps returns the attached dependency tracker (nil when disabled).
func (db *DB) Deps() *deps.Tracker {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.deps
}

// Audit returns the attached online auditor (nil when disabled).
func (db *DB) Audit() *audit.Auditor {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.audit
}

// AttachProf wires the contention & cost-attribution profiler: the stripe
// half attaches to the machine's lock helpers (every stripe acquisition,
// contended or not, and every condvar sleep is counted from here on) and the
// worker half receives per-phase cost attribution from the parallel restart
// pipeline. Passing nil detaches both. Unlike the observer, the profiler is
// safe to attach and detach mid-run: open critical sections straddling the
// switch account only the half they saw.
func (db *DB) AttachProf(p *prof.Pair) {
	if p != nil {
		db.M.SetProfiler(p.Stripes)
	} else {
		db.M.SetProfiler(nil)
	}
	db.mu.Lock()
	db.prof = p
	db.mu.Unlock()
}

// AttachWaterfall wires the per-transaction latency waterfall recorder
// through every substrate that attributes waits: the machine (line-lock
// queueing with holder resolution), each node's WAL (append markers), the
// buffer manager (disk-fetch waits), and the protocol layer itself (compute
// residue brackets, log-force and undo time, transaction lifecycle). Passing
// nil detaches everywhere.
func (db *DB) AttachWaterfall(w *waterfall.Recorder) {
	db.M.SetWaterfall(w)
	for _, l := range db.Logs {
		node := l.Node()
		var fn func() int64
		if w != nil {
			fn = func() int64 { return db.M.Clock(node) }
		}
		l.SetWaterfall(w, fn)
	}
	db.BM.SetWaterfall(w)
	if w == nil {
		db.wfp.Store(nil)
		return
	}
	db.wfp.Store(w)
}

// Waterfall returns the attached waterfall recorder (nil when disabled; all
// its methods are nil-safe).
func (db *DB) Waterfall() *waterfall.Recorder { return db.wfp.Load() }

// AttachDebt wires the live recovery-debt tracker through the substrates
// that accumulate (and retire) replay debt: each node's WAL (append, force,
// crash truncation, discard) and the buffer manager (dirty-page
// transitions). Recover feeds it MTTR samples and estimator calibration.
// Passing nil detaches everywhere.
func (db *DB) AttachDebt(d *debt.Tracker) {
	for _, l := range db.Logs {
		node := l.Node()
		var fn func() int64
		if d != nil {
			fn = func() int64 { return db.M.Clock(node) }
		}
		l.SetDebt(d, fn)
	}
	db.BM.SetDebt(d)
	if d == nil {
		db.dbtp.Store(nil)
		return
	}
	db.dbtp.Store(d)
}

// Debt returns the attached recovery-debt tracker (nil when disabled; all
// its methods are nil-safe).
func (db *DB) Debt() *debt.Tracker { return db.dbtp.Load() }

// Prof returns the attached profiler pair (nil when disabled).
func (db *DB) Prof() *prof.Pair {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.prof
}

// profWorkers returns the worker-attribution half of the attached profiler,
// nil when profiling is off (the parallel pipeline tests this once per
// fan-out).
func (db *DB) profWorkers() *prof.WorkerProf {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.prof == nil {
		return nil
	}
	return db.prof.Workers
}

// SetFlightRecorder wires a crash flight recorder: on every node crash a
// post-mortem dump (last-N events per node, dependency graph, stats deltas
// since the previous dump) is written at the next Recover entry, and
// harnesses call DumpFlight on IFA-check failures. Call after AttachObserver
// and AttachDeps so the recorder sees both. Passing nil detaches.
func (db *DB) SetFlightRecorder(r *obs.FlightRecorder) {
	db.mu.Lock()
	db.flight = r
	o := db.obs
	t := db.deps
	a := db.audit
	db.mu.Unlock()
	if r == nil {
		return
	}
	var g obs.GraphWriter
	if t != nil {
		g = t
	}
	var as obs.AuditSource
	if a != nil {
		as = a
	}
	var ps obs.ProfSource
	if p := db.Prof(); p != nil {
		ps = p
	}
	var ws obs.WaterfallSource
	if wf := db.Waterfall(); wf != nil {
		ws = wf
	}
	var ds obs.DebtSource
	if d := db.Debt(); d != nil {
		ds = d
	}
	// Stats writer: machine + protocol counters as deltas since the last
	// dump, so each dump reads as "what happened since the previous one".
	var prevM machine.Stats
	var prevP Stats
	var prevMu sync.Mutex
	r.SetSources(o, g, as, ps, ws, ds, func(w io.Writer) error {
		curM := db.M.Stats()
		curP := db.Stats()
		prevMu.Lock()
		dM := curM.Sub(prevM)
		dP := curP.Sub(prevP)
		prevM, prevP = curM, curP
		prevMu.Unlock()
		fmt.Fprintf(w, "machine stats delta: %+v\n\nprotocol stats delta: %+v\n", dM, dP)
		return nil
	})
}

// FlightRecorder returns the attached flight recorder (nil when disabled).
func (db *DB) FlightRecorder() *obs.FlightRecorder {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.flight
}

// DumpFlight writes a flight-recorder dump with the given reason, returning
// its directory. A detached recorder returns ("", nil).
func (db *DB) DumpFlight(reason string) (string, error) {
	return db.FlightRecorder().Dump(reason)
}

// Stats returns a snapshot of the protocol counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.stats
}

// bump mutates the stats under the lock.
func (db *DB) bump(f func(*Stats)) {
	db.mu.Lock()
	f(&db.stats)
	db.mu.Unlock()
}

// NextVersion returns a fresh global update version. (On real hardware this
// is a fetch-and-add on a dedicated shared line; its cost is folded into the
// update's local work.)
func (db *DB) NextVersion() uint64 {
	return db.versions.Add(1)
}

// Frozen reports whether the system is between a crash and the completion
// of restart recovery, during which transaction processing stalls.
func (db *DB) Frozen() bool { return db.frozen.Load() }

// parWorkers returns restart recovery's parallel fan-out: Cfg.RecoveryWorkers
// when it asks for real parallelism, 0 for the fully sequential pipeline
// (RecoveryWorkers of 0 or 1).
func (db *DB) parWorkers() int {
	if w := db.Cfg.RecoveryWorkers; w > 1 {
		return w
	}
	return 0
}

// logForceCost is the simulated price of one physical log force.
func (db *DB) logForceCost() int64 {
	c := db.M.Config().Cost
	if db.Cfg.NVRAMLog {
		return c.LogForceNVRAM
	}
	return c.LogForce
}

// Begin registers a new transaction on node nd.
func (db *DB) Begin(nd machine.NodeID) (wal.TxnID, error) {
	if !db.M.Alive(nd) {
		return 0, machine.ErrNodeDown
	}
	now := db.M.Clock(nd)
	db.mu.Lock()
	db.seqs[nd]++
	id := wal.MakeTxnID(nd, db.seqs[nd])
	db.txns[id] = &txnState{id: id, status: TxnActive, beginSim: now}
	o := db.obs
	db.mu.Unlock()
	o.Instant(obs.KindTxnBegin, int32(nd), now, int64(id), 0)
	db.wfp.Load().Begin(int64(id), int32(nd), now)
	return id, nil
}

// Status returns a transaction's lifecycle state.
func (db *DB) Status(t wal.TxnID) (TxnStatus, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	st, ok := db.txns[t]
	if !ok {
		return 0, false
	}
	return st.status, true
}

// ActiveTxns returns the active transactions, optionally filtered to a node,
// in ascending TxnID order. The order is deterministic (not map order) so
// callers that mutate state per transaction — like the chaos harness's
// stranded-transaction rollback — behave identically across runs, which the
// chaos replay machinery depends on.
func (db *DB) ActiveTxns(node machine.NodeID) []wal.TxnID {
	db.mu.Lock()
	var out []wal.TxnID
	for id, st := range db.txns {
		if st.status != TxnActive || st.crashed {
			continue
		}
		if node == machine.NoNode || id.Node() == node {
			out = append(out, id)
		}
	}
	db.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// txn fetches a transaction's state, failing if unknown.
func (db *DB) txn(t wal.TxnID) (*txnState, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	st, ok := db.txns[t]
	if !ok {
		return nil, fmt.Errorf("recovery: unknown transaction %v", t)
	}
	return st, nil
}

// NoteLock records a lock held by t (node-local bookkeeping for release at
// commit/abort).
func (db *DB) NoteLock(t wal.TxnID, name lock.Name, mode lock.Mode) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if st, ok := db.txns[t]; ok {
		for i := range st.locks {
			if st.locks[i].name == name {
				if mode > st.locks[i].mode {
					st.locks[i].mode = mode
				}
				return
			}
		}
		st.locks = append(st.locks, heldLock{name: name, mode: mode})
	}
}

// WriteCount returns how many updates a transaction has applied (for
// lost-work accounting in experiments).
func (db *DB) WriteCount(t wal.TxnID) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	st, ok := db.txns[t]
	if !ok {
		return 0
	}
	return len(st.writes)
}

// HeldLocks returns the locks a transaction's node-local state records.
func (db *DB) HeldLocks(t wal.TxnID) []lock.Name {
	db.mu.Lock()
	defer db.mu.Unlock()
	st, ok := db.txns[t]
	if !ok {
		return nil
	}
	out := make([]lock.Name, len(st.locks))
	for i, h := range st.locks {
		out[i] = h.name
	}
	return out
}
