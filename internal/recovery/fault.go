package recovery

import (
	"errors"
	"fmt"

	"smdb/internal/fault"
	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/obs/deps"
	"smdb/internal/storage"
	"smdb/internal/wal"
)

// ErrRecoveryInterrupted marks a restart-recovery run cut short by a further
// node crash (possibly of the recovery coordinator itself). Recover retries
// internally; the error surfaces only if the retry budget is exhausted.
var ErrRecoveryInterrupted = errors.New("recovery: interrupted by a crash during recovery")

// AttachFaults wires a fault injector through every layer that can fail:
// coherency transitions (machine), the stable database (disk), and each
// node's stable log device. Passing nil detaches everywhere. The injector
// decides; the engine executes — crashes fired by the machine hook take the
// victim down atomically with the transition, while I/O errors surface as
// storage.ErrTransient to the callers' bounded retries.
func (db *DB) AttachFaults(inj *fault.Injector) {
	db.mu.Lock()
	db.fault = inj
	db.mu.Unlock()
	if inj == nil {
		db.M.SetTransitionFault(nil)
		db.Disk.SetFault(nil)
		for _, l := range db.Logs {
			l.Device().SetFault(nil)
		}
		return
	}
	db.M.SetTransitionFault(func(ev machine.Event, alive int) []machine.NodeID {
		// Only database lines are LBM hazard windows (section 3.2): a
		// lock-table or directory line carries no uncommitted slot data,
		// so its transitions draw no crash decision.
		if !db.Store.Contains(ev.Line) {
			return nil
		}
		return inj.CrashAtMigration(ev, alive)
	})
	db.Disk.SetFault(func(op string) error { return inj.IOError("disk:" + op) })
	for _, l := range db.Logs {
		site := fmt.Sprintf("log%d:", l.Node())
		l.Device().SetFault(func(op string) error { return inj.IOError(site + op) })
	}
}

// injector returns the attached fault injector (nil when chaos is off).
func (db *DB) injector() *fault.Injector {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.fault
}

// aliveCount returns the number of live nodes (the injector's crash-floor
// input).
func (db *DB) aliveCount() int { return len(db.M.AliveNodes()) }

// noteCrash is the machine's crash-notify callback: it runs with the machine
// lock held at the tail of every Crash that actually took nodes down —
// whether requested by an experiment or injected mid-transition — and
// destroys the DB-layer state that lives in the crashed nodes' failure
// domains: volatile log tails, WAL-table columns, and transaction control
// state. Running under the machine lock makes the destruction atomic with
// the crash itself: no goroutine can observe a dead node with a live log
// tail. It must only call back into the machine via lock-free methods
// (Clock/MaxClock).
func (db *DB) noteCrash(rep machine.CrashReport) {
	db.frozen.Store(true)
	// Remember when the first crash of this failure episode happened, so
	// Recover can report the freeze span (crash-to-recovery-start).
	db.crashSim.CompareAndSwap(0, db.M.MaxClock())
	for _, n := range rep.Crashed {
		db.Logs[n].Crash()
		db.BM.DropNode(n)
	}
	// Collect the newly crash-victimized transactions while marking them:
	// the dependency tracker needs the engine's own victim census (see the
	// verdict-presence barrier in deps.NoteCrash) — its usual registration
	// path, the KindTxnBegin event, is emitted outside db.mu and can lose
	// the race against a crash landing right after Begin registered the
	// transaction here.
	var victims []deps.TxnRef
	db.mu.Lock()
	for _, st := range db.txns {
		if st.status == TxnActive && !st.crashed {
			for _, n := range rep.Crashed {
				if st.id.Node() == n {
					st.crashed = true
					victims = append(victims, deps.TxnRef{ID: int64(st.id), Node: int32(n)})
				}
			}
		}
	}
	dt := db.deps
	au := db.audit
	fl := db.flight
	db.mu.Unlock()
	if dt != nil || au != nil {
		// The tracker computes IFA-explainer verdicts against the exact
		// crash-instant state, and the auditor marks its crash victims and
		// suspends LBM checks for the recovery window; like everything in
		// this callback they must not call back into the machine (the
		// machine lock is held).
		crashed := make([]int32, len(rep.Crashed))
		for i, n := range rep.Crashed {
			crashed[i] = int32(n)
		}
		lost := make([]int32, len(rep.LostLines))
		for i, l := range rep.LostLines {
			lost[i] = int32(l)
		}
		now := db.M.MaxClock()
		dt.NoteCrash(crashed, lost, victims, now)
		au.NoteCrash(crashed, lost, now)
	}
	if fl != nil {
		// No file I/O under the machine lock: Recover writes the dump.
		db.flightPending.Store(true)
	}
}

// forceThrough forces node nd's log through lsn, charging simulated force
// latency and the caller's stat on a physical force. Under an armed injector
// the force can be torn mid-write: only a prefix of the buffer reaches the
// stable device and the forcing node dies at that instant, leaving a partial
// record for restart to truncate. The returned error wraps
// machine.ErrNodeDown so commit paths report the interruption exactly like
// any other crash-out.
func (db *DB) forceThrough(nd machine.NodeID, lsn wal.LSN, bump func(*Stats)) error {
	if inj := db.injector(); inj != nil {
		if frac, fire := inj.TornForce(nd, db.aliveCount()); fire {
			db.Logs[nd].ForceTorn(lsn, frac)
			db.M.Crash(nd)
			return fmt.Errorf("recovery: log force on node %d torn by crash: %w", nd, machine.ErrNodeDown)
		}
	}
	if _, forced := db.Logs[nd].Force(lsn); forced {
		cost := db.logForceCost()
		db.M.AdvanceClock(nd, cost)
		db.bump(bump)
		db.Observer().ObserveLogForce(cost)
	}
	return nil
}

// faultAtPhase gives the injector a shot at crashing a node — possibly the
// coordinator — at a restart-recovery phase boundary. A firing crashes the
// victims immediately and returns ErrRecoveryInterrupted, sending Recover
// back around its retry loop with a freshly elected coordinator.
func (db *DB) faultAtPhase(p obs.Phase) error {
	inj := db.injector()
	if inj == nil {
		return nil
	}
	alive := db.M.AliveNodes()
	if len(alive) == 0 {
		return fmt.Errorf("recovery: no surviving nodes")
	}
	victims := inj.CrashInRecovery(p.String(), alive[0], alive)
	if len(victims) == 0 {
		return nil
	}
	db.M.Crash(victims...)
	return fmt.Errorf("recovery: nodes %v crashed during %v: %w", victims, p, ErrRecoveryInterrupted)
}

// recoverableErr reports whether a mid-recovery error should send Recover
// around its retry loop rather than fail the run: a node (maybe the
// coordinator) died under recovery's feet, or a line recovery was touching
// was destroyed by that crash.
func recoverableErr(err error) bool {
	return errors.Is(err, ErrRecoveryInterrupted) ||
		errors.Is(err, machine.ErrNodeDown) ||
		errors.Is(err, machine.ErrLineLost)
}

// readPageRetry reads a stable page on nd's behalf, retrying transient
// injected I/O errors under the default policy with simulated backoff.
func (db *DB) readPageRetry(nd machine.NodeID, p storage.PageID) ([]byte, error) {
	for attempt := 1; ; attempt++ {
		img, err := db.Disk.ReadPage(p)
		if err == nil {
			return img, nil
		}
		if !errors.Is(err, storage.ErrTransient) || attempt >= storage.DefaultRetry.MaxAttempts {
			return nil, err
		}
		db.M.AdvanceClock(nd, storage.DefaultRetry.Backoff(attempt))
	}
}
