package recovery

import (
	"fmt"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/obs/waterfall"
	"smdb/internal/wal"
)

// The update protocol (sections 5 and 6). Every record update runs inside
// line-lock critical sections on the page header line (which carries the
// Page-LSN) and the record's line:
//
//	record lock (caller, strict 2PL)
//	  getline(header); getline(record line)
//	    read before image
//	    append undo/redo log record            <- ordered update logging
//	    apply update in place (+ undo tag)
//	    update Page-LSN
//	    [Stable LBM eager: force log]          <- LBM before any migration
//	    [Stable LBM triggered: set active bit]
//	  releaseline(record line); releaseline(header)
//
// Holding the line lock from the update through the log write is exactly
// what enforces Volatile LBM: the line cannot migrate, downgrade, or be
// invalidated in between, so by the time any other node can see the
// uncommitted data, the volatile log record exists.

// SlotImage packs a slot's logical content (flags byte + record payload)
// into the form stored in log records' Before/After images. Undo tags and
// versions are deliberately excluded: tags are reconstructed by recovery and
// versions are assigned per update.
func SlotImage(layout heap.Layout, flags byte, data []byte) []byte {
	img := make([]byte, 1+layout.RecordSize())
	img[0] = flags
	copy(img[1:], data)
	return img
}

// splitImage undoes SlotImage.
func splitImage(img []byte) (flags byte, data []byte) {
	return img[0], img[1:]
}

// Read returns rid's slot on behalf of node nd, fetching the page if
// needed. Callers are responsible for holding a shared record lock (unless
// dirty reads are configured).
func (db *DB) Read(nd machine.NodeID, rid heap.RID) (heap.SlotData, error) {
	if err := db.BM.Fetch(nd, rid.Page); err != nil {
		return heap.SlotData{}, err
	}
	return db.Store.ReadSlot(nd, rid)
}

// Update applies an in-place record update for transaction t. The caller
// holds an exclusive record lock. newData is zero-padded to the record size.
func (db *DB) Update(nd machine.NodeID, t wal.TxnID, rid heap.RID, newData []byte) error {
	err := db.applyChange(nd, t, rid, heap.FlagOccupied, newData, 0)
	if err == nil {
		db.bump(func(s *Stats) { s.Updates++ })
	}
	return err
}

// Insert stores a record in a (previously unoccupied) slot for t.
func (db *DB) Insert(nd machine.NodeID, t wal.TxnID, rid heap.RID, data []byte) error {
	cur, err := db.Read(nd, rid)
	if err != nil {
		return err
	}
	if cur.Occupied() && !cur.Deleted() {
		return fmt.Errorf("recovery: insert into occupied slot %v", rid)
	}
	err = db.applyChange(nd, t, rid, heap.FlagOccupied, data, 0)
	if err == nil {
		db.bump(func(s *Stats) { s.Inserts++ })
	}
	return err
}

// Delete logically deletes rid for t by setting the deleted mark while
// keeping the record bytes in place (section 4.2.1): the space is not
// reusable until t commits, and the undo of an uncommitted delete is a mere
// unmark (the migrating cache line carries the original record with it).
func (db *DB) Delete(nd machine.NodeID, t wal.TxnID, rid heap.RID) error {
	cur, err := db.Read(nd, rid)
	if err != nil {
		return err
	}
	if !cur.Occupied() || cur.Deleted() {
		return fmt.Errorf("recovery: delete of absent record %v", rid)
	}
	err = db.applyChange(nd, t, rid, heap.FlagOccupied|heap.FlagDeleted, cur.Data, 0)
	if err == nil {
		db.bump(func(s *Stats) { s.Deletes++ })
	}
	return err
}

// StructuralUpdate applies an update inside a nested top-level action (NTA):
// it is never undone by the enclosing transaction's abort and carries no
// undo tag. The B-tree uses it for page splits and space allocation.
func (db *DB) StructuralUpdate(nd machine.NodeID, t wal.TxnID, rid heap.RID, flags byte, data []byte, nta uint64) error {
	if nta == 0 {
		return fmt.Errorf("recovery: structural update outside an NTA")
	}
	return db.applyChange(nd, t, rid, flags, data, nta)
}

// applyChange is the update protocol proper.
func (db *DB) applyChange(nd machine.NodeID, t wal.TxnID, rid heap.RID, newFlags byte, newData []byte, nta uint64) error {
	st, err := db.txn(t)
	if err != nil {
		return err
	}
	if st.status != TxnActive {
		return fmt.Errorf("recovery: %v is %v, not active", t, st.status)
	}
	if t.Node() != nd {
		return fmt.Errorf("recovery: %v runs on node %d, not %d", t, t.Node(), nd)
	}
	// The update is an instrumented operation: its line waits, fetch waits,
	// and eager-LBM forces are attributed individually below, and whatever
	// sim time remains unexplained lands in the compute residue. Reentrant
	// under the transaction layer's own bracket.
	if wf := db.wfp.Load(); wf != nil {
		wf.OpStart(int64(t), int32(nd), db.M.Clock(nd))
		defer func() { wf.OpEnd(int64(t), int32(nd), db.M.Clock(nd)) }()
	}
	if err := db.BM.Fetch(nd, rid.Page); err != nil {
		return err
	}
	line, _, err := db.Store.LineOf(rid)
	if err != nil {
		return err
	}
	hdr := db.Store.HeaderLine(rid.Page)

	// Critical section: header line first, then the record's line (a fixed
	// order; both are within one page, so no cross-page nesting occurs).
	if err := db.M.GetLine(nd, hdr); err != nil {
		return err
	}
	if err := db.M.GetLine(nd, line); err != nil {
		db.mustRelease(nd, hdr)
		return err
	}
	defer db.mustRelease(nd, hdr)
	defer db.mustRelease(nd, line)

	cur, err := db.Store.ReadSlot(nd, rid)
	if err != nil {
		return err
	}
	before := SlotImage(db.Store.Layout, cur.Flags, cur.Data)
	after := SlotImage(db.Store.Layout, newFlags, newData)
	version := db.NextVersion()

	// Log before the line can migrate (LBM): the line lock pins it. The
	// AblatedNoLBM control defers the append to commit time instead,
	// deliberately breaking the guarantee.
	rec := wal.Record{
		Type: wal.TypeUpdate, Txn: t, Page: rid.Page, Slot: rid.Slot,
		Version: version, Before: before, After: after, NTA: nta,
	}
	var lsn wal.LSN
	if db.Cfg.Protocol.DeferredLogging() && nta == 0 {
		db.mu.Lock()
		st.deferred = append(st.deferred, rec)
		db.mu.Unlock()
	} else {
		lsn = db.Logs[nd].Append(rec)
		db.BM.NoteUpdate(rid.Page, nd, lsn)
		// Injected fault: the updater dies after its log append but before
		// its in-place slot write — the logged update never happened in
		// memory, and recovery's version check must skip it.
		if inj := db.injector(); inj != nil && inj.CrashAtUpdate(nd, db.aliveCount()) {
			db.M.Crash(nd)
			return fmt.Errorf("recovery: node %d crashed between log append and slot write: %w",
				nd, machine.ErrNodeDown)
		}
	}

	tag := machine.NoNode
	if db.Cfg.Protocol.UndoTagging() && nta == 0 {
		tag = nd
		db.bump(func(s *Stats) {
			s.TagWrites++
			s.UndoTagBytes++
		})
	}
	flags, data := splitImage(after)
	if err := db.Store.WriteSlot(nd, rid, heap.SlotData{Tag: tag, Flags: flags, Version: version, Data: data}); err != nil {
		return err
	}
	if err := db.Store.SetPageVersion(nd, rid.Page, version); err != nil {
		return err
	}
	db.BM.MarkDirty(rid.Page)

	switch db.Cfg.Protocol {
	case StableEager:
		// Stable LBM, enforced within the critical section: both undo and
		// redo information are stable before the line can move. The force
		// can be torn by an injected crash; the update dies with the node.
		if err := db.forceThroughTxn(nd, t, lsn, func(s *Stats) { s.LBMForces++ }); err != nil {
			return err
		}
	case StableTriggered:
		// Stable LBM via the section 5.2 extension: mark the line active
		// and remember how far this node's log must be forced if the line
		// is about to leave.
		db.mu.Lock()
		if lsn > db.pendingLSN[nd] {
			db.pendingLSN[nd] = lsn
		}
		db.mu.Unlock()
		if err := db.M.SetActive(line, true); err != nil {
			return err
		}
	}

	db.mu.Lock()
	if nta == 0 {
		st.writes = append(st.writes, writeRec{rid: rid, img: after, version: version, lsn: lsn})
	} else {
		// Structural changes are committed early (their NTA is forced
		// before anyone depends on them), so the oracle's last-committed
		// image advances immediately.
		db.committed[rid] = committedImage{img: after, version: version}
	}
	dt := db.deps
	au := db.audit
	db.mu.Unlock()
	if (dt != nil || au != nil) && nta == 0 {
		// Register the write with the dependency tracker and the online
		// auditor while the line lock still pins the line: it cannot
		// migrate, downgrade, or be invalidated before they know about the
		// uncommitted data.
		slot := int64(rid.Page)<<16 | int64(rid.Slot)
		now := db.M.Clock(nd)
		dt.NoteWrite(int64(t), int32(nd), int32(line), slot, int64(lsn), now)
		au.NoteWrite(int64(t), int32(nd), int32(line), slot, int64(lsn), now)
	}
	return nil
}

// lbmTrigger is the pre-transition callback installed for StableTriggered.
// It runs, with the machine lock held, just before an active line migrates,
// downgrades, or is invalidated: the node losing the line forces its log
// through its last update, making the undo and redo information stable
// before the data leaves its failure domain. The machine clears the line's
// active bit afterwards.
func (db *DB) lbmTrigger(ev machine.Event) (int64, error) {
	if ev.From < 0 || int(ev.From) >= len(db.Logs) {
		return 0, nil
	}
	db.mu.Lock()
	upto := db.pendingLSN[ev.From]
	db.mu.Unlock()
	if upto == 0 {
		return 0, nil
	}
	if _, forced := db.Logs[ev.From].Force(upto); forced {
		db.bump(func(s *Stats) { s.LBMForces++ })
		cost := db.logForceCost()
		// Safe with the machine lock held: the observer takes only its own
		// locks and never calls back into the machine.
		db.Observer().ObserveLogForce(cost)
		if wf := db.wfp.Load(); wf != nil {
			// The machine charges the trigger's cost to the acquiring node
			// (ev.To), so the force is that node's current transaction's
			// wait — the price of pulling an active line out of ev.From's
			// failure domain. Clock and recorder are machine-lock safe.
			if txn := wf.CurrentTxn(int32(ev.To)); txn != 0 {
				wf.AddWait(txn, waterfall.CauseLogForce, db.M.Clock(ev.To), cost, int64(upto), 0)
			}
		}
		return cost, nil
	}
	return 0, nil
}

// mustRelease releases a line lock, panicking on protocol violations (they
// are bugs, not runtime conditions). The one tolerated failure: the node
// crashed while this goroutine was inside the critical section — the
// machine already broke its line locks, and a real crashed CPU would simply
// have stopped executing here.
func (db *DB) mustRelease(nd machine.NodeID, l machine.LineID) {
	if err := db.M.ReleaseLine(nd, l); err != nil {
		if !db.M.Alive(nd) {
			return
		}
		panic(fmt.Sprintf("recovery: releasing line %d on node %d: %v", l, nd, err))
	}
}
