package recovery

import (
	"bytes"
	"fmt"
	"sort"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/wal"
)

// The IFA checker verifies, after restart recovery, the paper's central
// guarantee: *all* effects of active transactions that ran on crashed nodes
// are undone, and *no* effects of transactions on surviving nodes are lost.
// It is an oracle — it uses bookkeeping (committed images, surviving
// transactions' write lists) that the recovery protocols themselves never
// consult.

// CheckIFA examines the database state on behalf of node nd and returns a
// list of violations (empty means IFA holds). It checks:
//
//   - committed durability: every record's last committed image is in
//     place, unless a surviving active transaction has overwritten it;
//   - survivor preservation: every surviving active transaction's latest
//     update to each record is intact (value and, under undo tagging, tag);
//   - crash annulment: no crashed transaction's value remains; records they
//     touched read as their last committed images;
//   - lock-space consistency: surviving active transactions hold the locks
//     their nodes recorded; crashed transactions hold none.
func (db *DB) CheckIFA(nd machine.NodeID) []string {
	var violations []string
	add := func(format string, args ...interface{}) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	type expectation struct {
		img     []byte
		version uint64
		source  string
		tag     machine.NodeID // expected undo tag (NoNode unless survivor-active)
		txn     wal.TxnID
		lsn     wal.LSN // log position of the expected write (survivor-active)
	}
	expected := make(map[heap.RID]expectation)

	db.mu.Lock()
	// Start from the last committed images.
	for rid, ci := range db.committed {
		expected[rid] = expectation{img: ci.img, version: ci.version, source: "committed", tag: machine.NoNode}
	}
	// Surviving active transactions' newest writes take precedence.
	survivorWrites := 0
	crashedWrites := make(map[heap.RID]wal.TxnID)
	for _, st := range db.txns {
		if st.status == TxnActive && !st.crashed {
			for _, w := range st.writes {
				e, ok := expected[w.rid]
				if !ok || w.version > e.version {
					tag := machine.NoNode
					if db.Cfg.Protocol.UndoTagging() {
						tag = st.id.Node()
					}
					expected[w.rid] = expectation{img: w.img, version: w.version, source: "survivor-active", tag: tag, txn: st.id, lsn: w.lsn}
					survivorWrites++
				}
			}
		}
		if st.crashed {
			for _, w := range st.writes {
				crashedWrites[w.rid] = st.id
			}
		}
	}
	layout := db.Store.Layout
	db.mu.Unlock()

	// Deterministic iteration order for readable reports.
	rids := make([]heap.RID, 0, len(expected))
	for rid := range expected {
		rids = append(rids, rid)
	}
	sort.Slice(rids, func(i, j int) bool {
		if rids[i].Page != rids[j].Page {
			return rids[i].Page < rids[j].Page
		}
		return rids[i].Slot < rids[j].Slot
	})

	for _, rid := range rids {
		e := expected[rid]
		sd, err := db.Read(nd, rid)
		if err != nil {
			add("%v: unreadable after recovery: %v", rid, err)
			continue
		}
		got := SlotImage(layout, sd.Flags, sd.Data)
		if !bytes.Equal(got, e.img) {
			kind := "committed value lost"
			if e.source == "survivor-active" {
				kind = fmt.Sprintf("surviving transaction %v's update lost", e.txn)
			} else if t, ok := crashedWrites[rid]; ok {
				kind = fmt.Sprintf("crashed transaction %v's effect not undone", t)
			}
			add("%v: %s (got flags=%#x data=%.8x... v%d, want flags=%#x data=%.8x... v%d)%s",
				rid, kind, got[0], got[1:], sd.Version, e.img[0], e.img[1:], e.version,
				db.writeHistory(rid))
		}
		if db.Cfg.Protocol.UndoTagging() && sd.Tag != e.tag {
			// A missing tag on a surviving active update is acceptable
			// when the update's undo record is on stable store (the slot
			// passed through a steal or a lost-and-reinstalled line):
			// the protocol's undo guarantee is "tag in cache OR undo
			// record stable", and recovery uses whichever exists.
			tagless := sd.Tag == machine.NoNode && e.source == "survivor-active" &&
				e.lsn > 0 && db.Logs[e.txn.Node()].ForcedLSN() >= e.lsn
			if !tagless {
				add("%v: undo tag = %d, want %d (%s)", rid, sd.Tag, e.tag, e.source)
			}
		}
	}

	// Lock space.
	snap, err := db.Locks.Snapshot(nd)
	if err != nil {
		add("lock space unreadable: %v", err)
		return violations
	}
	heldIn := make(map[wal.TxnID]map[uint64]bool)
	for _, ls := range snap {
		for _, h := range ls.Holders {
			m := heldIn[h.Txn]
			if m == nil {
				m = make(map[uint64]bool)
				heldIn[h.Txn] = m
			}
			m[uint64(ls.Name)] = true
		}
		for _, w := range ls.Waiters {
			m := heldIn[w.Txn]
			if m == nil {
				m = make(map[uint64]bool)
				heldIn[w.Txn] = m
			}
			m[uint64(ls.Name)] = true
		}
	}
	db.mu.Lock()
	for _, st := range db.txns {
		switch {
		case st.status == TxnActive && !st.crashed:
			for _, hl := range st.locks {
				if !heldIn[st.id][uint64(hl.name)] {
					add("lock %v of surviving %v lost from lock space", hl.name, st.id)
				}
			}
		case st.crashed:
			if n := len(heldIn[st.id]); n > 0 {
				add("crashed %v still appears in %d LCBs", st.id, n)
			}
		}
	}
	db.mu.Unlock()
	return violations
}

// writeHistory summarizes which transactions wrote rid (for violation
// diagnostics). Caller must not hold db.mu.
func (db *DB) writeHistory(rid heap.RID) string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := ""
	for _, st := range db.txns {
		for _, w := range st.writes {
			if w.rid == rid {
				out += fmt.Sprintf(" [%v %v crashed=%v wrote v%d]", st.id, st.status, st.crashed, w.version)
			}
		}
	}
	return out
}

// VerifyCommittedDurability re-reads every committed record and confirms it
// matches the oracle (a weaker, always-applicable check usable during
// normal operation).
func (db *DB) VerifyCommittedDurability(nd machine.NodeID) []string {
	var violations []string
	db.mu.Lock()
	type pair struct {
		rid heap.RID
		ci  committedImage
	}
	var pairs []pair
	overwritten := make(map[heap.RID]bool)
	for _, st := range db.txns {
		if st.status == TxnActive {
			for _, w := range st.writes {
				overwritten[w.rid] = true
			}
		}
	}
	for rid, ci := range db.committed {
		if !overwritten[rid] {
			pairs = append(pairs, pair{rid, ci})
		}
	}
	layout := db.Store.Layout
	db.mu.Unlock()
	for _, p := range pairs {
		sd, err := db.Read(nd, p.rid)
		if err != nil {
			violations = append(violations, fmt.Sprintf("%v: unreadable: %v", p.rid, err))
			continue
		}
		if !bytes.Equal(SlotImage(layout, sd.Flags, sd.Data), p.ci.img) {
			violations = append(violations, fmt.Sprintf("%v: committed image mismatch", p.rid))
		}
	}
	return violations
}
