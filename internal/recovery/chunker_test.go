package recovery

import (
	"math/rand"
	"reflect"
	"testing"
)

// checkPartition asserts the chunks tile [0, n) exactly: contiguous,
// in order, each non-empty.
func checkPartition(t *testing.T, chunks []chunk, n int) {
	t.Helper()
	next := 0
	for i, c := range chunks {
		if c.lo != next {
			t.Fatalf("chunk %d starts at %d, want %d (chunks %v)", i, c.lo, next, chunks)
		}
		if c.hi <= c.lo {
			t.Fatalf("chunk %d is empty or inverted: %v", i, c)
		}
		next = c.hi
	}
	if next != n {
		t.Fatalf("chunks cover [0,%d), want [0,%d): %v", next, n, chunks)
	}
}

// TestBalanceChunksPartition sweeps sizes, worker counts, and grains: every
// output must be an exact ordered partition of the index space with at most
// workers*grain (or n) chunks.
func TestBalanceChunksPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 2, 3, 7, 8, 64, 257} {
		for _, workers := range []int{1, 2, 4, 13} {
			for _, grain := range []int{0, 1, 4, 16} {
				weights := make([]int, n)
				for i := range weights {
					weights[i] = rng.Intn(100)
				}
				for _, weight := range []func(int) int{nil, func(i int) int { return weights[i] }} {
					chunks := balanceChunks(n, workers, grain, weight)
					checkPartition(t, chunks, n)
					g := grain
					if g <= 0 {
						g = defaultStealGrain
					}
					max := workers * g
					if max > n {
						max = n
					}
					if len(chunks) > max {
						t.Errorf("n=%d workers=%d grain=%d: %d chunks, want <= %d",
							n, workers, grain, len(chunks), max)
					}
				}
			}
		}
	}
	if got := balanceChunks(0, 4, 0, nil); got != nil {
		t.Errorf("n=0: got %v, want nil", got)
	}
}

// TestBalanceChunksDeterministic pins the property the equivalence gate
// leans on: identical inputs produce identical cut points, call after call.
func TestBalanceChunksDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	weights := make([]int, 113)
	for i := range weights {
		weights[i] = rng.Intn(1000)
	}
	w := func(i int) int { return weights[i] }
	for _, grain := range []int{-1, 0, 2, 8} {
		a := balanceChunks(len(weights), 4, grain, w)
		b := balanceChunks(len(weights), 4, grain, w)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("grain=%d: two calls disagree:\n  %v\n  %v", grain, a, b)
		}
	}
}

// TestBalanceChunksPerItem: grain == -1 is the legacy one-task-per-chunk
// dispatch, kept for the E23 A/B — weights must not change it.
func TestBalanceChunksPerItem(t *testing.T) {
	chunks := balanceChunks(9, 4, -1, func(i int) int { return i * 50 })
	if len(chunks) != 9 {
		t.Fatalf("grain=-1: %d chunks, want 9", len(chunks))
	}
	for i, c := range chunks {
		if c.lo != i || c.hi != i+1 {
			t.Errorf("chunk %d = %v, want {%d,%d}", i, c, i, i+1)
		}
	}
}

// TestBalanceChunksWeightBalance: under a heavily skewed weight vector the
// greedy cut must keep every chunk within one max-task of the running
// average — the bound that guarantees no single steal dominates the tail.
func TestBalanceChunksWeightBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n, workers := 200, 4
	weights := make([]int, n)
	total, maxW := 0, 0
	for i := range weights {
		w := rng.Intn(10)
		if rng.Intn(20) == 0 {
			w = 500 + rng.Intn(500) // occasional whales
		}
		weights[i] = w
		total += w
		if w > maxW {
			maxW = w
		}
	}
	chunks := balanceChunks(n, workers, 0, func(i int) int { return weights[i] })
	checkPartition(t, chunks, n)
	ideal := total / (workers * defaultStealGrain)
	bound := ideal + maxW
	for _, c := range chunks {
		cw := 0
		for i := c.lo; i < c.hi; i++ {
			cw += weights[i]
		}
		if cw > bound {
			t.Errorf("chunk %v weight %d exceeds ideal+max bound %d (ideal %d, max task %d)",
				c, cw, bound, ideal, maxW)
		}
	}
}

// TestBalanceChunksZeroWeights: an all-zero weight vector must fall back to
// even index ranges rather than one giant chunk.
func TestBalanceChunksZeroWeights(t *testing.T) {
	chunks := balanceChunks(64, 4, 0, func(int) int { return 0 })
	checkPartition(t, chunks, 64)
	if len(chunks) < 4 {
		t.Errorf("all-zero weights collapsed to %d chunks: %v", len(chunks), chunks)
	}
}
