package recovery_test

import (
	"bytes"
	"testing"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/recovery"
)

// Direct unit tests for the stale-tag reconciliation path of undoTagScan: a
// cached slot whose undo tag names a *surviving* node. The tag is legitimate
// only if that node's log shows an update of exactly this (rid, version) by a
// transaction that is still active and uncrashed; otherwise the tag is debris
// from a commit/crash race and must be cleared without touching the data.
// Organic stale-surviving tags need a precisely timed race (FlushPage strips
// tags before they hit disk), so these tests synthesize the post-race state
// directly on the cached line and then drive a real recovery over it.

// plantTag rewrites rid's undo tag in place from node nd, caching the line at
// nd — the synthesized leftover of a tag-write that lost a race with commit.
func plantTag(t *testing.T, db *recovery.DB, nd machine.NodeID, rid heap.RID, tag machine.NodeID) {
	t.Helper()
	line, _, err := db.Store.LineOf(rid)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.M.GetLine(nd, line); err != nil {
		t.Fatal(err)
	}
	if err := db.Store.WriteTag(nd, rid, tag); err != nil {
		t.Fatal(err)
	}
	if err := db.M.ReleaseLine(nd, line); err != nil {
		t.Fatal(err)
	}
}

// TestUndoTagScanStaleCommittedTag: the tag names surviving node 1, whose log
// does contain an update of this slot version — but by a transaction that has
// already committed. Recovery must clear the tag and leave the committed data
// untouched (no spurious undo).
func TestUndoTagScanStaleCommittedTag(t *testing.T) {
	for _, workers := range []int{0, 4} {
		db, mgr := newDB(t, recovery.VolatileSelectiveRedo, 3)
		db.Cfg.RecoveryWorkers = workers
		rid := heap.RID{Page: 1, Slot: 0}
		seed(t, mgr, []heap.RID{rid}, 1)

		// Node 1 updates and commits; commit clears the tag normally.
		tx, err := mgr.Begin(1)
		if err != nil {
			t.Fatal(err)
		}
		want := []byte{7, 7, 7}
		if err := tx.Write(rid, want); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}

		// Re-plant tag=1 from node 0: node 1's log has this (rid, version),
		// but the transaction is committed, so the tag is stale.
		plantTag(t, db, 0, rid, 1)

		db.Crash(2)
		rep, err := db.Recover([]machine.NodeID{2})
		if err != nil {
			t.Fatal(err)
		}
		sd, err := db.Read(0, rid)
		if err != nil {
			t.Fatal(err)
		}
		if sd.Tag != machine.NoNode {
			t.Errorf("workers=%d: stale tag not cleared: tag=%d", workers, sd.Tag)
		}
		if !bytes.HasPrefix(sd.Data, want) {
			t.Errorf("workers=%d: committed data disturbed: got %v want %v", workers, sd.Data, want)
		}
		if rep.UndoApplied != 0 {
			t.Errorf("workers=%d: stale-tag clear must not undo: UndoApplied=%d", workers, rep.UndoApplied)
		}
		mustCheckIFA(t, db, 0)
	}
}

// TestUndoTagScanUnknownTaggerTag: the tag names a surviving node whose log
// has no update of this slot version at all (index miss). Same verdict —
// stale, cleared, data intact.
func TestUndoTagScanUnknownTaggerTag(t *testing.T) {
	db, mgr := newDB(t, recovery.VolatileSelectiveRedo, 3)
	rid := heap.RID{Page: 1, Slot: 2}
	seed(t, mgr, []heap.RID{rid}, 5)

	// Node 1 never touched rid; a tag naming it cannot be legitimate.
	plantTag(t, db, 0, rid, 1)

	db.Crash(2)
	rep, err := db.Recover([]machine.NodeID{2})
	if err != nil {
		t.Fatal(err)
	}
	sd, err := db.Read(0, rid)
	if err != nil {
		t.Fatal(err)
	}
	if sd.Tag != machine.NoNode {
		t.Errorf("unknown-tagger tag not cleared: tag=%d", sd.Tag)
	}
	if want := []byte{5, byte(rid.Page), byte(rid.Slot)}; !bytes.HasPrefix(sd.Data, want) {
		t.Errorf("seeded data disturbed: got %v want %v", sd.Data, want)
	}
	if rep.UndoApplied != 0 {
		t.Errorf("stale-tag clear must not undo: UndoApplied=%d", rep.UndoApplied)
	}
	mustCheckIFA(t, db, 0)
}

// TestUndoTagScanLegitimateTagPreserved: the control case — the tag belongs
// to a surviving node's still-active transaction. Recovery must leave it (and
// the uncommitted update) alone, and the transaction must still be able to
// commit afterwards.
func TestUndoTagScanLegitimateTagPreserved(t *testing.T) {
	for _, workers := range []int{0, 4} {
		db, mgr := newDB(t, recovery.VolatileSelectiveRedo, 3)
		db.Cfg.RecoveryWorkers = workers
		rid := heap.RID{Page: 1, Slot: 1}
		seed(t, mgr, []heap.RID{rid}, 3)

		tx, err := mgr.Begin(1)
		if err != nil {
			t.Fatal(err)
		}
		want := []byte{9, 9, 9}
		if err := tx.Write(rid, want); err != nil {
			t.Fatal(err)
		}
		// Migrate the tagged line to node 0's cache so a different survivor
		// is the one that scans it.
		if _, err := db.Read(0, rid); err != nil {
			t.Fatal(err)
		}

		db.Crash(2)
		if _, err := db.Recover([]machine.NodeID{2}); err != nil {
			t.Fatal(err)
		}
		sd, err := db.Read(0, rid)
		if err != nil {
			t.Fatal(err)
		}
		if sd.Tag != 1 {
			t.Errorf("workers=%d: legitimate tag disturbed: tag=%d", workers, sd.Tag)
		}
		if !bytes.HasPrefix(sd.Data, want) {
			t.Errorf("workers=%d: active update disturbed: got %v want %v", workers, sd.Data, want)
		}
		if err := tx.Commit(); err != nil {
			t.Errorf("workers=%d: surviving txn cannot commit after recovery: %v", workers, err)
		}
		sd, err = db.Read(0, rid)
		if err != nil {
			t.Fatal(err)
		}
		if sd.Tag != machine.NoNode || !bytes.HasPrefix(sd.Data, want) {
			t.Errorf("workers=%d: post-commit state wrong: tag=%d data=%v", workers, sd.Tag, sd.Data)
		}
		mustCheckIFA(t, db, 0)
	}
}
