package recovery

import (
	"fmt"

	"smdb/internal/heap"
	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/obs/waterfall"
	"smdb/internal/wal"
)

// Parallel transactions (paper section 9): "For a parallel transaction
// (one which executes on multiple nodes), the recovery measures are similar
// to those for independent transactions. However, if one of the nodes
// executing this transaction were to crash, the entire transaction must be
// aborted."
//
// A parallel transaction is a set of per-node branches, each an ordinary
// transaction in its node's failure domain, bound by a global identifier.
// Commit is coordinated: every branch's log is forced through its commit
// record before the global commit is acknowledged (all branches run on one
// machine, so a simple force-all suffices — there is no network partition
// to 2PC against). At restart recovery, if any branch's node crashed, the
// surviving branches are rolled back too, using their own (intact) volatile
// logs.

// GlobalID identifies a parallel transaction.
type GlobalID uint64

// BeginGlobal registers a new parallel transaction.
func (db *DB) BeginGlobal() GlobalID {
	return GlobalID(db.NextVersion())
}

// BeginBranch starts this parallel transaction's branch on node nd. A
// global transaction may have at most one branch per node.
func (db *DB) BeginBranch(g GlobalID, nd machine.NodeID) (wal.TxnID, error) {
	if g == 0 {
		return 0, fmt.Errorf("recovery: zero global id")
	}
	id, err := db.Begin(nd)
	if err != nil {
		return 0, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, st := range db.txns {
		if st.global == uint64(g) && st.id.Node() == nd && st.id != id {
			return 0, fmt.Errorf("recovery: global %d already has a branch on node %d", g, nd)
		}
	}
	db.txns[id].global = uint64(g)
	return id, nil
}

// Branches returns the branch transactions of g, in node order.
func (db *DB) Branches(g GlobalID) []wal.TxnID {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []wal.TxnID
	for _, st := range db.txns {
		if st.global == uint64(g) {
			out = append(out, st.id)
		}
	}
	sortTxns(out)
	return out
}

// CommitGlobal commits every branch of g atomically with respect to
// failures: commit records are appended to every branch's log, then every
// log is forced, and only then are the branches marked committed. If any
// branch's node is down the global transaction cannot commit.
func (db *DB) CommitGlobal(g GlobalID) error {
	branches := db.Branches(g)
	if len(branches) == 0 {
		return fmt.Errorf("recovery: global %d has no branches", g)
	}
	for _, t := range branches {
		st, err := db.txn(t)
		if err != nil {
			return err
		}
		if st.status != TxnActive {
			return fmt.Errorf("recovery: branch %v is %v", t, st.status)
		}
		if !db.M.Alive(t.Node()) {
			return fmt.Errorf("recovery: branch %v's node is down: %w", t, machine.ErrNodeDown)
		}
	}
	// Phase 1: append commit records everywhere (the global id in the
	// record ties the branch commits together for any log-based audit).
	lsns := make(map[wal.TxnID]wal.LSN, len(branches))
	for _, t := range branches {
		st, err := db.txn(t)
		if err != nil {
			return err
		}
		db.flushDeferred(t.Node(), st)
		lsns[t] = db.Logs[t.Node()].Append(wal.Record{Type: wal.TypeCommit, Txn: t, NTA: uint64(g)})
	}
	// Phase 2: force all logs; a crash of any node before every force
	// completes leaves at least one branch without a stable commit, and
	// restart recovery will then abort the whole family (a branch with a
	// stable commit record but an aborted sibling is repaired by the
	// global-abort pass below).
	for _, t := range branches {
		if err := db.forceCommit(t.Node(), t, lsns[t]); err != nil {
			return fmt.Errorf("recovery: global commit %d: %w", g, err)
		}
		if lsns[t] == 0 || db.Logs[t.Node()].ForcedLSN() < lsns[t] {
			return fmt.Errorf("recovery: global commit %d interrupted by failure of branch %v: %w",
				g, t, machine.ErrNodeDown)
		}
	}
	// Finalize: tags cleared, oracle updated, status flipped.
	for _, t := range branches {
		if err := db.finalizeCommit(t); err != nil {
			return err
		}
	}
	return nil
}

// finalizeCommit performs the post-force commit work of one transaction
// (shared by Commit and CommitGlobal): undo tags are cleared and the
// oracle's last-committed images advance to the transaction's own final
// write images. The images come from the transaction's write records, never
// from re-reading the slots — a commit racing a concurrent node crash could
// otherwise observe a stale disk reinstall and poison the oracle while the
// database itself recovers correctly.
func (db *DB) finalizeCommit(t wal.TxnID) error {
	st, err := db.txn(t)
	if err != nil {
		return err
	}
	nd := t.Node()
	db.mu.Lock()
	latest := make(map[heap.RID]writeRec, len(st.writes))
	order := make([]heap.RID, 0, len(st.writes))
	for _, w := range st.writes {
		if prev, ok := latest[w.rid]; !ok {
			order = append(order, w.rid)
			latest[w.rid] = w
		} else if w.version > prev.version {
			latest[w.rid] = w
		}
	}
	db.mu.Unlock()
	for _, rid := range order {
		if err := db.clearTag(nd, rid); err != nil {
			return err
		}
	}
	db.mu.Lock()
	for rid, w := range latest {
		if ci, ok := db.committed[rid]; !ok || w.version > ci.version {
			db.committed[rid] = committedImage{img: w.img, version: w.version}
		}
	}
	st.status = TxnCommitted
	db.stats.Commits++
	o := db.obs
	beginSim := st.beginSim
	db.mu.Unlock()
	if o != nil {
		now := db.M.Clock(nd)
		o.Instant(obs.KindTxnCommit, int32(nd), now, int64(t), 0)
		o.ObserveCommit(now - beginSim)
	}
	if wf := db.wfp.Load(); wf != nil {
		// Close the Commit bracket (a no-op for global branches, which never
		// opened one) and complete the waterfall.
		now := db.M.Clock(nd)
		wf.OpEnd(int64(t), int32(nd), now)
		wf.End(int64(t), now, waterfall.OutcomeCommitted)
	}
	return nil
}

// AbortGlobal rolls back every live branch of g. Branches on crashed nodes
// are left for restart recovery.
func (db *DB) AbortGlobal(g GlobalID) error {
	for _, t := range db.Branches(g) {
		st, err := db.txn(t)
		if err != nil {
			return err
		}
		if st.status != TxnActive || st.crashed {
			continue
		}
		if err := db.Abort(t.Node(), t); err != nil {
			return err
		}
	}
	return nil
}

// abortOrphanedBranches is the restart-recovery pass for parallel
// transactions: any surviving active branch whose global family lost a
// branch to a crash is rolled back (using its own intact log) and its locks
// are released. Returns the branches aborted.
func (db *DB) abortOrphanedBranches(rep *RecoveryReport) ([]wal.TxnID, error) {
	db.mu.Lock()
	// Globals with a crashed branch.
	doomed := make(map[uint64]bool)
	for _, st := range db.txns {
		if st.global != 0 && st.crashed {
			doomed[st.global] = true
		}
	}
	var victims []wal.TxnID
	for _, st := range db.txns {
		if st.global != 0 && doomed[st.global] && st.status == TxnActive && !st.crashed {
			victims = append(victims, st.id)
		}
	}
	db.mu.Unlock()
	sortTxns(victims)
	for _, t := range victims {
		if err := db.Abort(t.Node(), t); err != nil {
			return victims, fmt.Errorf("recovery: aborting orphaned branch %v: %w", t, err)
		}
		// Release the branch's locks (its transaction layer will never
		// get the chance).
		db.mu.Lock()
		locks := append([]heldLock(nil), db.txns[t].locks...)
		db.mu.Unlock()
		for _, hl := range locks {
			_ = db.Locks.Release(t.Node(), t, hl.name)
		}
		db.mu.Lock()
		db.stats.TxnsAbortedByRecovery++
		db.mu.Unlock()
		rep.Aborted = append(rep.Aborted, t)
	}
	return victims, nil
}
