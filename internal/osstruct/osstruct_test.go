package osstruct

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"smdb/internal/machine"
)

func newSems(t *testing.T, nodes int, caps []int) (*SemTable, *machine.Machine) {
	t.Helper()
	m := machine.New(machine.Config{Nodes: nodes, Lines: 256})
	s, err := NewSemTable(m, caps)
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

func TestSemaphorePV(t *testing.T) {
	s, _ := newSems(t, 2, []int{2})
	if err := s.P(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.P(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.P(0, 0); !errors.Is(err, ErrNoUnits) {
		t.Errorf("exhausted P: %v", err)
	}
	v, holders, err := s.Value(0, 0)
	if err != nil || v != 0 || len(holders) != 2 {
		t.Errorf("Value = %d, %v, %v", v, holders, err)
	}
	if err := s.V(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.V(1, 0); !errors.Is(err, ErrNotHolder) {
		t.Errorf("double V: %v", err)
	}
	v, holders, _ = s.Value(0, 0)
	if v != 1 || len(holders) != 1 || holders[0] != 0 {
		t.Errorf("after V: %d, %v", v, holders)
	}
}

// TestSemaphoreCrashRecovery: the section 9 scenario. The semaphore line
// lives on the last toucher; its crash destroys the value and every node's
// holdings. Recovery rebuilds from the survivors' logs: dead units
// released, surviving units intact.
func TestSemaphoreCrashRecovery(t *testing.T) {
	s, m := newSems(t, 3, []int{3, 1})
	if err := s.P(0, 0); err != nil { // survivor holds one unit of sem 0
		t.Fatal(err)
	}
	if err := s.P(2, 0); err != nil { // doomed node holds one too
		t.Fatal(err)
	}
	if err := s.P(2, 1); err != nil { // and all of sem 1
		t.Fatal(err)
	}
	// Node 2 touched both lines last: they die with it.
	m.Crash(2)
	if m.Resident(s.line(0)) || m.Resident(s.line(1)) {
		t.Fatal("semaphore lines should have died with node 2")
	}
	rebuilt, released, err := s.Recover(0, []machine.NodeID{2})
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt != 2 {
		t.Errorf("rebuilt = %d, want 2", rebuilt)
	}
	_ = released // both dead units never made it into a surviving line
	// Sem 0: capacity 3, node 0 still holds 1 unit -> value 2.
	v, holders, err := s.Value(0, 0)
	if err != nil || v != 2 || len(holders) != 1 || holders[0] != 0 {
		t.Errorf("sem 0 = %d, %v, %v; want 2 units free, node 0 holding", v, holders, err)
	}
	// Sem 1: the dead node's unit is back -> value 1, no holders.
	v, holders, err = s.Value(0, 1)
	if err != nil || v != 1 || len(holders) != 0 {
		t.Errorf("sem 1 = %d, %v, %v; want fully free", v, holders, err)
	}
	// The freed capacity is usable again.
	if err := s.P(1, 1); err != nil {
		t.Errorf("P after recovery: %v", err)
	}
}

// TestSemaphoreSurvivingLineRelease: when the semaphore line survives the
// crash (resident on a survivor), recovery releases dead units in place.
func TestSemaphoreSurvivingLineRelease(t *testing.T) {
	s, m := newSems(t, 3, []int{2})
	if err := s.P(2, 0); err != nil { // doomed node first
		t.Fatal(err)
	}
	if err := s.P(0, 0); err != nil { // survivor touches last: line lives on node 0
		t.Fatal(err)
	}
	m.Crash(2)
	if !m.Resident(s.line(0)) {
		t.Fatal("line should have survived on node 0")
	}
	rebuilt, released, err := s.Recover(0, []machine.NodeID{2})
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt != 0 || released != 1 {
		t.Errorf("rebuilt=%d released=%d, want 0, 1", rebuilt, released)
	}
	v, holders, _ := s.Value(0, 0)
	if v != 1 || len(holders) != 1 || holders[0] != 0 {
		t.Errorf("after recovery: %d, %v", v, holders)
	}
}

func newMap(t *testing.T, nodes, blocks int) (*DiskMap, *machine.Machine) {
	t.Helper()
	m := machine.New(machine.Config{Nodes: nodes, Lines: 256})
	d, err := NewDiskMap(m, blocks)
	if err != nil {
		t.Fatal(err)
	}
	return d, m
}

func TestDiskMapAllocFree(t *testing.T) {
	d, _ := newMap(t, 2, 10)
	seen := map[int]bool{}
	for i := 0; i < 10; i++ {
		b, err := d.Alloc(machine.NodeID(i % 2))
		if err != nil {
			t.Fatal(err)
		}
		if seen[b] {
			t.Fatalf("block %d allocated twice", b)
		}
		seen[b] = true
	}
	if _, err := d.Alloc(0); !errors.Is(err, ErrNoSpace) {
		t.Errorf("full map: %v", err)
	}
	if err := d.Free(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(0, 3); !errors.Is(err, ErrBadBlock) {
		t.Errorf("double free: %v", err)
	}
	b, err := d.Alloc(1)
	if err != nil || b != 3 {
		t.Errorf("realloc = %d, %v; want 3", b, err)
	}
	if ok, _ := d.Allocated(0, 3); !ok {
		t.Error("block 3 should be allocated")
	}
	if _, err := d.Allocated(0, 99); !errors.Is(err, ErrBadBlock) {
		t.Errorf("out of range: %v", err)
	}
}

// TestDiskMapCrashRecovery: a crash destroys bitmap lines and loses a dead
// node's allocations; recovery rebuilds the map so that survivors keep
// exactly their blocks and the dead node's blocks are reclaimed.
func TestDiskMapCrashRecovery(t *testing.T) {
	d, m := newMap(t, 3, 64)
	var mine []int
	for i := 0; i < 5; i++ {
		b, err := d.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		mine = append(mine, b)
	}
	for i := 0; i < 4; i++ {
		if _, err := d.Alloc(2); err != nil { // doomed node's blocks
			t.Fatal(err)
		}
	}
	// Node 2 wrote last: the bitmap line lives (only) there.
	m.Crash(2)
	rebuilt, reclaimed, err := d.Recover(0, []machine.NodeID{2})
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt == 0 && reclaimed == 0 {
		t.Fatal("recovery found nothing to repair")
	}
	// Survivor's blocks intact; everything else free.
	allocated := 0
	for b := 0; b < d.Blocks(); b++ {
		ok, err := d.Allocated(0, b)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			allocated++
		}
	}
	if allocated != len(mine) {
		t.Errorf("%d blocks allocated after recovery, want %d", allocated, len(mine))
	}
	for _, b := range mine {
		if ok, _ := d.Allocated(0, b); !ok {
			t.Errorf("survivor's block %d lost", b)
		}
	}
	// Reclaimed space is allocatable.
	if _, err := d.Alloc(1); err != nil {
		t.Errorf("alloc after recovery: %v", err)
	}
}

// TestQuickDiskMapModel: random alloc/free sequences with crashes match a
// model; no block is ever double-allocated and recovery never loses a
// survivor's block.
func TestQuickDiskMapModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const nodes, blocks = 3, 48
		d, m := newMapQuick(nodes, blocks)
		owner := make(map[int]machine.NodeID) // model: block -> allocator
		alive := []machine.NodeID{0, 1, 2}
		for step := 0; step < 150; step++ {
			nd := alive[r.Intn(len(alive))]
			switch r.Intn(6) {
			case 0, 1, 2: // alloc
				b, err := d.Alloc(nd)
				if errors.Is(err, ErrNoSpace) {
					continue
				}
				if err != nil {
					t.Logf("seed %d: alloc: %v", seed, err)
					return false
				}
				if _, taken := owner[b]; taken {
					t.Logf("seed %d: block %d double-allocated", seed, b)
					return false
				}
				owner[b] = nd
			case 3, 4: // free one of nd's blocks
				for b, o := range owner {
					if o == nd {
						if err := d.Free(nd, b); err != nil {
							t.Logf("seed %d: free: %v", seed, err)
							return false
						}
						delete(owner, b)
						break
					}
				}
			case 5: // crash one node (keep >= 1 alive), recover, restart
				if len(alive) < 2 {
					continue
				}
				idx := r.Intn(len(alive))
				victim := alive[idx]
				alive = append(alive[:idx], alive[idx+1:]...)
				m.Crash(victim)
				if _, _, err := d.Recover(alive[0], []machine.NodeID{victim}); err != nil {
					t.Logf("seed %d: recover: %v", seed, err)
					return false
				}
				for b, o := range owner {
					if o == victim {
						delete(owner, b) // reclaimed
					}
				}
				// The node plugs back in (its log history is gone with it:
				// model it by restarting machine node only; its old blocks
				// were reclaimed above).
				if err := m.Restart(victim); err != nil {
					t.Log(err)
					return false
				}
				d.Logs[victim].Crash()
				d.Logs[victim].Reopen()
				alive = append(alive, victim)
			}
		}
		// Final state matches the model exactly.
		for b := 0; b < blocks; b++ {
			got, err := d.Allocated(alive[0], b)
			if err != nil {
				t.Logf("seed %d: allocated(%d): %v", seed, b, err)
				return false
			}
			_, want := owner[b]
			if got != want {
				t.Logf("seed %d: block %d allocated=%v, model=%v", seed, b, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func newMapQuick(nodes, blocks int) (*DiskMap, *machine.Machine) {
	m := machine.New(machine.Config{Nodes: nodes, Lines: 256})
	d, err := NewDiskMap(m, blocks)
	if err != nil {
		panic(err)
	}
	return d, m
}
