// Package osstruct applies the paper's recovery techniques to operating-
// system data structures, as its conclusion (section 9) proposes: "many
// operating system data structures, including semaphores, maps used to
// catalog disk usage, and the disk buffer, lend themselves to a shared
// memory implementation. Recovery techniques similar to ours can be applied
// ... to ensure that the crash of one node does not necessarily affect the
// integrity of the process management information on other nodes."
//
// Two structures are implemented, each living in the coherent shared memory
// of the simulated machine and each with IFA-style recovery:
//
//   - SemTable — counting semaphores, one per cache line. Acquisitions are
//     logged (volatile) per node, exactly like the lock manager's read-lock
//     logging; after a crash, units held by dead nodes are released, and
//     destroyed semaphore lines are rebuilt from the survivors' logs plus
//     the (software-known) capacities.
//
//   - DiskMap — a free-space bitmap cataloguing disk blocks. Allocations
//     and frees are logged before the bitmap line can migrate (the volatile
//     LBM discipline); recovery rebuilds destroyed bitmap lines from the
//     surviving logs and releases blocks allocated by crashed nodes that
//     no survivor can account for.
package osstruct

import (
	"errors"
	"fmt"

	"smdb/internal/machine"
	"smdb/internal/storage"
	"smdb/internal/wal"
)

// Errors.
var (
	// ErrNoUnits reports a P operation on an exhausted semaphore.
	ErrNoUnits = errors.New("osstruct: no semaphore units available")
	// ErrNotHolder reports a V by a node holding no unit.
	ErrNotHolder = errors.New("osstruct: node holds no unit of semaphore")
	// ErrNoSpace reports an allocation on a full disk map.
	ErrNoSpace = errors.New("osstruct: no free blocks")
	// ErrBadBlock reports an out-of-range or unallocated block.
	ErrBadBlock = errors.New("osstruct: bad block")
)

// Semaphore line layout: value (2 bytes) | nholders (2) | holder node IDs
// (1 byte each, node+1). One semaphore per cache line, so a node crash
// destroys all or none of it — the paper's one-line LCB discipline.
const (
	semValueOff   = 0
	semNHoldOff   = 2
	semHoldersOff = 4
)

// SemTable is a shared-memory table of counting semaphores.
type SemTable struct {
	M *machine.Machine
	// Logs hold each node's semaphore operations (acquire/release), the
	// recovery source for rebuilding destroyed lines.
	Logs []*wal.Log

	base machine.LineID
	caps []int // configured capacity per semaphore (OS-known software state)
}

// NewSemTable creates one semaphore per entry of caps, initialized to full
// capacity, with a private volatile/stable log per node.
func NewSemTable(m *machine.Machine, caps []int) (*SemTable, error) {
	s := &SemTable{M: m, base: m.Alloc(len(caps)), caps: append([]int(nil), caps...)}
	for i, c := range caps {
		if c < 0 || c > 255 {
			return nil, fmt.Errorf("osstruct: capacity %d out of range", c)
		}
		img := make([]byte, m.LineSize())
		img[semValueOff] = byte(c)
		if err := m.Install(0, s.base+machine.LineID(i), img); err != nil {
			return nil, err
		}
	}
	s.Logs = make([]*wal.Log, m.Nodes())
	for i := range s.Logs {
		var err error
		s.Logs[i], err = wal.NewLog(machine.NodeID(i), storage.NewLogDevice())
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// line returns semaphore sem's cache line.
func (s *SemTable) line(sem int) machine.LineID { return s.base + machine.LineID(sem) }

// P acquires one unit of semaphore sem for node nd, or ErrNoUnits. The
// logging-before-migration discipline applies: the line lock pins the line
// across the update and the (volatile) log append.
func (s *SemTable) P(nd machine.NodeID, sem int) error {
	l := s.line(sem)
	if err := s.M.GetLine(nd, l); err != nil {
		return err
	}
	defer s.M.ReleaseLine(nd, l)
	raw, err := s.M.Read(nd, l, 0, s.M.LineSize())
	if err != nil {
		return err
	}
	if raw[semValueOff] == 0 {
		return ErrNoUnits
	}
	nh := int(raw[semNHoldOff])
	if semHoldersOff+nh >= s.M.LineSize() {
		return fmt.Errorf("osstruct: semaphore %d holder list full", sem)
	}
	raw[semValueOff]--
	raw[semNHoldOff] = byte(nh + 1)
	raw[semHoldersOff+nh] = byte(int(nd) + 1)
	if err := s.M.Write(nd, l, 0, raw); err != nil {
		return err
	}
	s.Logs[nd].Append(wal.Record{Type: wal.TypeLockAcquire, Txn: wal.MakeTxnID(nd, 1), Lock: uint64(sem)})
	return nil
}

// V releases one of node nd's units of semaphore sem.
func (s *SemTable) V(nd machine.NodeID, sem int) error {
	l := s.line(sem)
	if err := s.M.GetLine(nd, l); err != nil {
		return err
	}
	defer s.M.ReleaseLine(nd, l)
	raw, err := s.M.Read(nd, l, 0, s.M.LineSize())
	if err != nil {
		return err
	}
	nh := int(raw[semNHoldOff])
	found := -1
	for i := 0; i < nh; i++ {
		if raw[semHoldersOff+i] == byte(int(nd)+1) {
			found = i
			break
		}
	}
	if found < 0 {
		return fmt.Errorf("%w: node %d, semaphore %d", ErrNotHolder, nd, sem)
	}
	copy(raw[semHoldersOff+found:], raw[semHoldersOff+found+1:semHoldersOff+nh])
	raw[semHoldersOff+nh-1] = 0
	raw[semNHoldOff] = byte(nh - 1)
	raw[semValueOff]++
	if err := s.M.Write(nd, l, 0, raw); err != nil {
		return err
	}
	s.Logs[nd].Append(wal.Record{Type: wal.TypeLockRelease, Txn: wal.MakeTxnID(nd, 1), Lock: uint64(sem)})
	return nil
}

// Value returns semaphore sem's available units and the holder nodes.
func (s *SemTable) Value(nd machine.NodeID, sem int) (int, []machine.NodeID, error) {
	raw, err := s.M.Read(nd, s.line(sem), 0, s.M.LineSize())
	if err != nil {
		return 0, nil, err
	}
	nh := int(raw[semNHoldOff])
	holders := make([]machine.NodeID, 0, nh)
	for i := 0; i < nh; i++ {
		holders = append(holders, machine.NodeID(int(raw[semHoldersOff+i])-1))
	}
	return int(raw[semValueOff]), holders, nil
}

// holdings reconstructs each surviving node's current unit counts per
// semaphore from its (intact) log: acquisitions minus releases.
func (s *SemTable) holdings(alive map[machine.NodeID]bool) map[int]map[machine.NodeID]int {
	out := make(map[int]map[machine.NodeID]int)
	for n, l := range s.Logs {
		nd := machine.NodeID(n)
		if !alive[nd] {
			continue
		}
		for _, rec := range l.Records(1) {
			sem := int(rec.Lock)
			m := out[sem]
			if m == nil {
				m = make(map[machine.NodeID]int)
				out[sem] = m
			}
			switch rec.Type {
			case wal.TypeLockAcquire:
				m[nd]++
			case wal.TypeLockRelease:
				m[nd]--
			}
		}
	}
	return out
}

// Recover repairs the semaphore table after the given nodes crashed, on
// behalf of surviving node nd:
//
//   - semaphore lines that survived have dead nodes' units released in
//     place (condition 1 of section 4.2.2, applied to semaphores);
//   - destroyed lines are rebuilt from the survivors' logs and the known
//     capacities (condition 2: no surviving node's holdings are lost).
//
// It returns how many semaphores were rebuilt and how many dead-node units
// were released.
func (s *SemTable) Recover(nd machine.NodeID, crashed []machine.NodeID) (rebuilt, released int, err error) {
	down := make(map[machine.NodeID]bool, len(crashed))
	for _, c := range crashed {
		down[c] = true
	}
	alive := make(map[machine.NodeID]bool)
	for _, a := range s.M.AliveNodes() {
		alive[a] = true
	}
	held := s.holdings(alive)
	for sem := range s.caps {
		l := s.line(sem)
		if s.M.Resident(l) {
			// Surviving line: strip dead holders.
			if err := s.M.GetLine(nd, l); err != nil {
				return rebuilt, released, err
			}
			raw, err := s.M.Read(nd, l, 0, s.M.LineSize())
			if err != nil {
				s.M.ReleaseLine(nd, l)
				return rebuilt, released, err
			}
			nh := int(raw[semNHoldOff])
			keep := make([]byte, 0, nh)
			for i := 0; i < nh; i++ {
				holder := machine.NodeID(int(raw[semHoldersOff+i]) - 1)
				if down[holder] {
					released++
					raw[semValueOff]++
				} else {
					keep = append(keep, raw[semHoldersOff+i])
				}
			}
			if len(keep) != nh {
				copy(raw[semHoldersOff:], keep)
				for i := len(keep); i < nh; i++ {
					raw[semHoldersOff+i] = 0
				}
				raw[semNHoldOff] = byte(len(keep))
				if err := s.M.Write(nd, l, 0, raw); err != nil {
					s.M.ReleaseLine(nd, l)
					return rebuilt, released, err
				}
			}
			s.M.ReleaseLine(nd, l)
			continue
		}
		// Destroyed line: rebuild from survivors' logs + capacity.
		img := make([]byte, s.M.LineSize())
		units := 0
		pos := semHoldersOff
		for holder, n := range held[sem] {
			for i := 0; i < n; i++ {
				img[pos] = byte(int(holder) + 1)
				pos++
				units++
			}
		}
		img[semNHoldOff] = byte(units)
		img[semValueOff] = byte(s.caps[sem] - units)
		if err := s.M.Install(nd, l, img); err != nil {
			return rebuilt, released, err
		}
		rebuilt++
	}
	return rebuilt, released, nil
}
