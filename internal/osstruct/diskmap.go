package osstruct

import (
	"fmt"

	"smdb/internal/machine"
	"smdb/internal/storage"
	"smdb/internal/wal"
)

// DiskMap is the "map used to catalog disk usage" of section 9: a bitmap of
// disk blocks in shared memory, one bit per block, spread across cache
// lines. Any node allocates or frees blocks; the bitmap lines migrate
// between nodes like any shared data. Every state change is logged to the
// operating node's (volatile) log inside the line-lock critical section —
// the volatile LBM discipline — so a crash can always be repaired:
// destroyed bitmap lines are rebuilt from the surviving logs, and blocks
// whose allocation is attributable only to a crashed node are reclaimed.
type DiskMap struct {
	M *machine.Machine
	// Logs hold each node's allocation/free records.
	Logs []*wal.Log

	base   machine.LineID
	blocks int
}

// NewDiskMap creates a map of nBlocks blocks, all free.
func NewDiskMap(m *machine.Machine, nBlocks int) (*DiskMap, error) {
	lines := (nBlocks + m.LineSize()*8 - 1) / (m.LineSize() * 8)
	if lines == 0 {
		lines = 1
	}
	d := &DiskMap{M: m, base: m.Alloc(lines), blocks: nBlocks}
	img := make([]byte, m.LineSize())
	for i := 0; i < lines; i++ {
		if err := m.Install(0, d.base+machine.LineID(i), img); err != nil {
			return nil, err
		}
	}
	d.Logs = make([]*wal.Log, m.Nodes())
	for i := range d.Logs {
		var err error
		d.Logs[i], err = wal.NewLog(machine.NodeID(i), storage.NewLogDevice())
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Blocks returns the map's capacity.
func (d *DiskMap) Blocks() int { return d.blocks }

// locate returns block b's line and bit position.
func (d *DiskMap) locate(b int) (machine.LineID, int, int) {
	bitsPerLine := d.M.LineSize() * 8
	return d.base + machine.LineID(b/bitsPerLine), (b % bitsPerLine) / 8, b % 8
}

// Alloc finds and claims a free block on behalf of node nd.
func (d *DiskMap) Alloc(nd machine.NodeID) (int, error) {
	bitsPerLine := d.M.LineSize() * 8
	lines := (d.blocks + bitsPerLine - 1) / bitsPerLine
	for li := 0; li < lines; li++ {
		l := d.base + machine.LineID(li)
		if err := d.M.GetLine(nd, l); err != nil {
			return -1, err
		}
		raw, err := d.M.Read(nd, l, 0, d.M.LineSize())
		if err != nil {
			d.M.ReleaseLine(nd, l)
			return -1, err
		}
		limit := d.blocks - li*bitsPerLine
		for bit := 0; bit < bitsPerLine && bit < limit; bit++ {
			byteIdx, mask := bit/8, byte(1)<<(bit%8)
			if raw[byteIdx]&mask == 0 {
				raw[byteIdx] |= mask
				block := li*bitsPerLine + bit
				if err := d.M.Write(nd, l, byteIdx, raw[byteIdx:byteIdx+1]); err != nil {
					d.M.ReleaseLine(nd, l)
					return -1, err
				}
				// Log before the line can migrate.
				d.Logs[nd].Append(wal.Record{Type: wal.TypeLockAcquire, Txn: wal.MakeTxnID(nd, 1), Lock: uint64(block)})
				d.M.ReleaseLine(nd, l)
				return block, nil
			}
		}
		d.M.ReleaseLine(nd, l)
	}
	return -1, ErrNoSpace
}

// Free releases block b on behalf of node nd.
func (d *DiskMap) Free(nd machine.NodeID, b int) error {
	if b < 0 || b >= d.blocks {
		return fmt.Errorf("%w: %d", ErrBadBlock, b)
	}
	l, byteIdx, bit := d.locate(b)
	if err := d.M.GetLine(nd, l); err != nil {
		return err
	}
	defer d.M.ReleaseLine(nd, l)
	raw, err := d.M.Read(nd, l, byteIdx, 1)
	if err != nil {
		return err
	}
	mask := byte(1) << bit
	if raw[0]&mask == 0 {
		return fmt.Errorf("%w: %d not allocated", ErrBadBlock, b)
	}
	raw[0] &^= mask
	if err := d.M.Write(nd, l, byteIdx, raw); err != nil {
		return err
	}
	d.Logs[nd].Append(wal.Record{Type: wal.TypeLockRelease, Txn: wal.MakeTxnID(nd, 1), Lock: uint64(b)})
	return nil
}

// Allocated reports whether block b is currently marked allocated.
func (d *DiskMap) Allocated(nd machine.NodeID, b int) (bool, error) {
	if b < 0 || b >= d.blocks {
		return false, fmt.Errorf("%w: %d", ErrBadBlock, b)
	}
	l, byteIdx, bit := d.locate(b)
	raw, err := d.M.Read(nd, l, byteIdx, 1)
	if err != nil {
		return false, err
	}
	return raw[0]&(byte(1)<<bit) != 0, nil
}

// liveBlocks reconstructs the allocated-block set attributable to surviving
// nodes from their logs: each node's allocations net of its own frees,
// unioned. Blocks are leases — the allocating node is the only one that
// frees them (per-node logs carry no cross-node ordering, so a foreign free
// could not be sequenced against the owner's allocation anyway).
func (d *DiskMap) liveBlocks(alive map[machine.NodeID]bool) map[int]bool {
	out := make(map[int]bool)
	for n, l := range d.Logs {
		if !alive[machine.NodeID(n)] {
			continue
		}
		net := make(map[int]int)
		for _, rec := range l.Records(1) {
			switch rec.Type {
			case wal.TypeLockAcquire:
				net[int(rec.Lock)]++
			case wal.TypeLockRelease:
				net[int(rec.Lock)]--
			}
		}
		for b, c := range net {
			if c > 0 {
				out[b] = true
			}
		}
	}
	return out
}

// Recover repairs the disk map after a crash, on behalf of node nd:
// destroyed bitmap lines are rebuilt from the survivors' logs (blocks whose
// allocations died with the crashed nodes are thereby reclaimed), and
// surviving lines have unaccountable (crashed-node) allocations cleared.
// A subtlety the paper's early-commit rule covers: a block handed out to a
// crashed node is safe to reclaim only because allocations here are leases
// owned by the allocating node, not structural changes shared with others.
// It returns lines rebuilt and blocks reclaimed.
func (d *DiskMap) Recover(nd machine.NodeID, crashed []machine.NodeID) (rebuilt, reclaimed int, err error) {
	alive := make(map[machine.NodeID]bool)
	for _, a := range d.M.AliveNodes() {
		alive[a] = true
	}
	live := d.liveBlocks(alive)
	bitsPerLine := d.M.LineSize() * 8
	lines := (d.blocks + bitsPerLine - 1) / bitsPerLine
	for li := 0; li < lines; li++ {
		l := d.base + machine.LineID(li)
		img := make([]byte, d.M.LineSize())
		limit := d.blocks - li*bitsPerLine
		for bit := 0; bit < bitsPerLine && bit < limit; bit++ {
			if live[li*bitsPerLine+bit] {
				img[bit/8] |= byte(1) << (bit % 8)
			}
		}
		if !d.M.Resident(l) {
			if err := d.M.Install(nd, l, img); err != nil {
				return rebuilt, reclaimed, err
			}
			rebuilt++
			continue
		}
		// Surviving line: clear bits no survivor accounts for.
		if err := d.M.GetLine(nd, l); err != nil {
			return rebuilt, reclaimed, err
		}
		raw, err := d.M.Read(nd, l, 0, d.M.LineSize())
		if err != nil {
			d.M.ReleaseLine(nd, l)
			return rebuilt, reclaimed, err
		}
		changed := false
		for i := range raw {
			if stale := raw[i] &^ img[i]; stale != 0 {
				for bit := 0; bit < 8; bit++ {
					if stale&(1<<bit) != 0 {
						reclaimed++
					}
				}
				raw[i] = img[i]
				changed = true
			}
		}
		if changed {
			if err := d.M.Write(nd, l, 0, raw); err != nil {
				d.M.ReleaseLine(nd, l)
				return rebuilt, reclaimed, err
			}
		}
		d.M.ReleaseLine(nd, l)
	}
	return rebuilt, reclaimed, nil
}
