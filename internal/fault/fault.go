// Package fault is a deterministic, seeded fault-injection engine for the
// shared-memory database. It decides — from a single PRNG stream, so every
// schedule is reproducible from its seed — when to fire the failure modes
// the paper's protocols must survive:
//
//   - a node crash at the precise instant a cache line migrates, downgrades,
//     or is invalidated (the LBM hazard windows of section 3.2);
//   - a node crash between an update's log append and its in-place slot
//     write (inside the line-lock critical section);
//   - a log force torn mid-write, leaving a partial record on the stable
//     log device (the torn-tail problem);
//   - a node crash during restart recovery itself, including the
//     coordinator node (recovery must re-elect and re-enter);
//   - transient disk / log-device I/O errors, bounded per site so the
//     callers' retry policies always terminate.
//
// The injector itself is pure decision logic: it holds no references to the
// engine. The machine, storage, wal, and recovery layers consult it through
// narrow hooks (machine.SetTransitionFault, storage.SetFault, and the
// recovery layer's crash/torn-force call sites), so a nil or disarmed
// injector costs one pointer test.
package fault

import (
	"fmt"
	"math/rand"
	"sync"

	"smdb/internal/machine"
	"smdb/internal/sched"
	"smdb/internal/storage"
)

// Plan parameterizes one chaos schedule. All probabilities are per
// opportunity (per coherency transition, per logged update, per force, per
// recovery phase boundary, per storage operation).
type Plan struct {
	// Seed makes the schedule reproducible.
	Seed int64
	// PCrashAtMigration crashes the node losing a line exactly at a
	// migrate/downgrade/invalidate transition.
	PCrashAtMigration float64
	// PCrashAtUpdate crashes the updating node between its log append and
	// its in-place slot write.
	PCrashAtUpdate float64
	// PTornForce interrupts a log force mid-write: only a prefix of the
	// buffer reaches the stable device, and the forcing node crashes.
	PTornForce float64
	// PCrashInRecovery crashes a node at a restart-recovery phase boundary.
	PCrashInRecovery float64
	// PCoordinatorCrash is, given an in-recovery crash fires, the
	// probability that the victim is the recovery coordinator itself.
	PCoordinatorCrash float64
	// PIOError makes a disk or log-device operation fail with
	// storage.ErrTransient.
	PIOError float64
	// IOErrorBurst bounds consecutive transient errors per site (default 2),
	// so callers' bounded retries always eventually succeed.
	IOErrorBurst int
	// MaxCrashes is the crash budget per episode (default 1). It bounds
	// cascading failures and guarantees recovery terminates.
	MaxCrashes int
	// MinAlive is the floor of live nodes below which no crash fires
	// (default 1: the machine always keeps a survivor).
	MinAlive int
}

func (p *Plan) setDefaults() {
	if p.IOErrorBurst == 0 {
		p.IOErrorBurst = 2
	}
	if p.MaxCrashes == 0 {
		p.MaxCrashes = 1
	}
	if p.MinAlive == 0 {
		p.MinAlive = 1
	}
}

// Firing records one fault decision, for reproducibility reports.
type Firing struct {
	Site string
	Node machine.NodeID
}

// Stats counts the faults an injector has fired.
type Stats struct {
	// Crashes counts injected node crashes of every flavour (migration,
	// update, torn force, in-recovery).
	Crashes int
	// TornForces counts forces torn mid-write.
	TornForces int
	// RecoveryCrashes counts crashes fired at recovery phase boundaries
	// (a subset of Crashes).
	RecoveryCrashes int
	// IOErrors counts transient I/O errors injected.
	IOErrors int
}

// Injector is a seeded fault-decision engine. It is safe for concurrent use;
// the shared PRNG stream is serialized by a mutex, so the *set* of faults a
// concurrent run draws is seed-determined even though their interleaving is
// scheduler-dependent.
type Injector struct {
	mu    sync.Mutex
	plan  Plan
	rng   *rand.Rand
	armed bool
	// inRecovery suppresses the workload-time faults (migration, update,
	// torn force) while restart recovery runs; in-recovery crashes and I/O
	// errors stay live.
	inRecovery bool
	// crashes spent against the episode's MaxCrashes budget.
	crashes int
	burst   map[string]int
	firings []Firing
	stats   Stats
	// sched, when non-nil, records or replays every PRNG outcome at a keyed
	// decision site (see SetSched). Nil costs one pointer test per decision.
	sched *sched.Session
}

// New builds an injector for the given plan. The injector starts disarmed.
func New(plan Plan) *Injector {
	plan.setDefaults()
	return &Injector{
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
		burst: make(map[string]int),
	}
}

// SetSched attaches (or, with nil, detaches) a chaos schedule session. When
// recording, every decision's PRNG outcome is appended to the schedule at a
// keyed site; when replaying, decisions consume the recorded outcomes and
// never touch the PRNG — so a replayed run fires exactly the recorded
// faults (same victims, same torn fractions) regardless of timing.
func (in *Injector) SetSched(s *sched.Session) {
	in.mu.Lock()
	in.sched = s
	in.mu.Unlock()
}

// Plan returns the (defaulted) plan.
func (in *Injector) Plan() Plan {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.plan
}

// Arm enables fault firing; Disarm stops it (decision state is retained).
func (in *Injector) Arm() {
	in.mu.Lock()
	in.armed = true
	in.mu.Unlock()
}

// Disarm stops fault firing.
func (in *Injector) Disarm() {
	in.mu.Lock()
	in.armed = false
	in.mu.Unlock()
}

// BeginRecovery suppresses workload-time faults while restart recovery runs
// (in-recovery crashes and I/O errors remain live). EndRecovery reverses it.
func (in *Injector) BeginRecovery() {
	in.mu.Lock()
	in.inRecovery = true
	in.mu.Unlock()
}

// EndRecovery re-enables workload-time faults.
func (in *Injector) EndRecovery() {
	in.mu.Lock()
	in.inRecovery = false
	in.mu.Unlock()
}

// ResetEpisode refills the crash budget and clears I/O burst state for the
// next crash/recover episode. The PRNG stream continues, so successive
// episodes of one seeded run draw distinct but reproducible schedules.
func (in *Injector) ResetEpisode() {
	in.mu.Lock()
	in.crashes = 0
	in.burst = make(map[string]int)
	in.mu.Unlock()
}

// Firings returns the fault decisions fired so far.
func (in *Injector) Firings() []Firing {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Firing(nil), in.firings...)
}

// Stats returns the cumulative fault counts.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// crashBudgetLocked reports whether another crash may fire with `alive` live
// nodes. Called with in.mu held.
func (in *Injector) crashBudgetLocked(alive int) bool {
	return in.crashes < in.plan.MaxCrashes && alive > in.plan.MinAlive
}

// CrashAtMigration decides whether the coherency transition ev crashes the
// node losing the line (ev.From), at exactly that instant. It is wired into
// the machine's transition-fault hook and runs with the machine lock held.
func (in *Injector) CrashAtMigration(ev machine.Event, alive int) []machine.NodeID {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.armed || in.inRecovery || ev.From < 0 || !in.crashBudgetLocked(alive) {
		return nil
	}
	d := in.sched.Draw(fmt.Sprintf("migrate:%d", ev.From), func() sched.Draw {
		return sched.Draw{Fire: in.rng.Float64() < in.plan.PCrashAtMigration}
	})
	if !d.Fire {
		return nil
	}
	in.crashes++
	in.stats.Crashes++
	in.firings = append(in.firings, Firing{Site: "coherency:" + ev.Kind.String(), Node: ev.From})
	return []machine.NodeID{ev.From}
}

// CrashAtUpdate decides whether node nd crashes between an update's log
// append and its slot write.
func (in *Injector) CrashAtUpdate(nd machine.NodeID, alive int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.armed || in.inRecovery || !in.crashBudgetLocked(alive) {
		return false
	}
	d := in.sched.Draw(fmt.Sprintf("update:%d", nd), func() sched.Draw {
		return sched.Draw{Fire: in.rng.Float64() < in.plan.PCrashAtUpdate}
	})
	if !d.Fire {
		return false
	}
	in.crashes++
	in.stats.Crashes++
	in.firings = append(in.firings, Firing{Site: "update", Node: nd})
	return true
}

// TornForce decides whether node nd's log force is torn mid-write. The
// returned fraction (in (0,1)) is how much of the force buffer reaches the
// device before the node dies.
func (in *Injector) TornForce(nd machine.NodeID, alive int) (frac float64, fire bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.armed || in.inRecovery || !in.crashBudgetLocked(alive) {
		return 0, false
	}
	d := in.sched.Draw(fmt.Sprintf("torn:%d", nd), func() sched.Draw {
		if in.rng.Float64() >= in.plan.PTornForce {
			return sched.Draw{}
		}
		return sched.Draw{Fire: true, Frac: 0.1 + 0.8*in.rng.Float64()}
	})
	if !d.Fire {
		return 0, false
	}
	in.crashes++
	in.stats.Crashes++
	in.stats.TornForces++
	in.firings = append(in.firings, Firing{Site: "torn-force", Node: nd})
	return d.Frac, true
}

// CrashInRecovery decides whether a node crashes at a restart-recovery phase
// boundary. With probability PCoordinatorCrash the victim is the coordinator
// itself; otherwise a uniformly chosen other survivor.
func (in *Injector) CrashInRecovery(phase string, coord machine.NodeID, alive []machine.NodeID) []machine.NodeID {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.armed || !in.crashBudgetLocked(len(alive)) {
		return nil
	}
	d := in.sched.Draw("recovery:"+phase, func() sched.Draw {
		if in.rng.Float64() >= in.plan.PCrashInRecovery {
			return sched.Draw{}
		}
		victim := coord
		if in.rng.Float64() >= in.plan.PCoordinatorCrash {
			var others []machine.NodeID
			for _, n := range alive {
				if n != coord {
					others = append(others, n)
				}
			}
			if len(others) > 0 {
				victim = others[in.rng.Intn(len(others))]
			}
		}
		return sched.Draw{Fire: true, Node: int32(victim)}
	})
	if !d.Fire {
		return nil
	}
	victim := machine.NodeID(d.Node)
	in.crashes++
	in.stats.Crashes++
	in.stats.RecoveryCrashes++
	in.firings = append(in.firings, Firing{Site: "recovery:" + phase, Node: victim})
	return []machine.NodeID{victim}
}

// IOError decides whether a storage operation at the given site fails with a
// transient error. Consecutive failures per site are bounded by IOErrorBurst,
// so any retry policy with more attempts than the burst always succeeds.
func (in *Injector) IOError(site string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.armed || in.plan.PIOError <= 0 {
		return nil
	}
	if in.burst[site] >= in.plan.IOErrorBurst {
		in.burst[site] = 0
		return nil
	}
	d := in.sched.Draw("io:"+site, func() sched.Draw {
		return sched.Draw{Fire: in.rng.Float64() < in.plan.PIOError}
	})
	if !d.Fire {
		in.burst[site] = 0
		return nil
	}
	in.burst[site]++
	in.stats.IOErrors++
	return fmt.Errorf("fault: injected at %s: %w", site, storage.ErrTransient)
}
