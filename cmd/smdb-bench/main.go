// Command smdb-bench runs the experiments that regenerate the paper's
// table, measured numbers, and quantitative claims (DESIGN.md experiment
// index E1-E10), printing each as an aligned text table.
//
// Usage:
//
//	smdb-bench [-exp all|table1|linelock|...] [-seed N]
//	           [-trace out.json] [-metrics] [-http 127.0.0.1:8321]
//	           [-audit] [-window 1ms]
//
// The observability flags are the shared set (internal/obscli): -trace
// writes a Chrome trace-event JSON file (load it at ui.perfetto.dev or
// chrome://tracing) covering the traced experiments — restart recovery's
// phase spans in particular; -metrics prints the observability layer's
// Prometheus text exposition and latency table after the experiments; -http
// serves the live introspection endpoints while the experiments run.
// The online auditor's census is E19's subject (`-exp audit`), which
// attaches its own per-arm auditors and needs no flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"smdb/internal/harness"
	"smdb/internal/obs"
	"smdb/internal/obscli"
	"smdb/internal/recovery"
)

// experiment is one runnable entry: run prints its table(s) or fails.
type experiment struct {
	name   string
	id     string
	title  string
	source string
	run    func(seed int64, o *obs.Observer) (string, error)
}

// obsFlags is set in main before any experiment runs; the E18 closure reads
// the -recoverworkers knob from it.
var obsFlags *obscli.Flags

var experiments = []experiment{
	{"table1", "E1", "incremental overheads of the IFA protocols", "Table 1",
		func(seed int64, _ *obs.Observer) (string, error) {
			res, err := harness.RunTable1(seed)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		}},
	{"linelock", "E2", "line-lock acquisition latency vs contention", "section 5.1 measurements",
		func(seed int64, _ *obs.Observer) (string, error) {
			res, err := harness.RunLineLock(nil, 200, 0)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		}},
	{"aborts", "E3", "unnecessary aborts after a one-node crash", "sections 1, 3, 9",
		func(seed int64, _ *obs.Observer) (string, error) {
			res, err := harness.RunAborts(8, nil, nil, seed)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		}},
	{"runtime", "E4", "failure-free runtime cost per protocol", "sections 4.1.1, 5, 7",
		func(seed int64, _ *obs.Observer) (string, error) {
			res, err := harness.RunRuntime(8, 0.5, seed)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		}},
	{"restart", "E5", "restart recovery: Redo All vs Selective Redo", "section 4.1.2",
		func(seed int64, o *obs.Observer) (string, error) {
			res, err := harness.RunRestart(nil, seed, o)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		}},
	{"forces", "E6", "log-force frequency vs inter-node sharing", "section 5.2",
		func(seed int64, _ *obs.Observer) (string, error) {
			res, err := harness.RunForces(nil, seed)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		}},
	{"broadcast", "E7", "write-broadcast coherency: no migration, undo-only recovery", "section 7",
		func(seed int64, _ *obs.Observer) (string, error) {
			res, err := harness.RunBroadcast(seed)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		}},
	{"locks", "E8", "SM locking vs message-passing (shared-disk) locking", "sections 4.2.2, 7, ref [20]",
		func(seed int64, _ *obs.Observer) (string, error) {
			res, err := harness.RunLocks(nil, 200, seed)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		}},
	{"btree", "E9", "B-tree crash recovery with early-committed splits", "section 4.2.1",
		func(seed int64, _ *obs.Observer) (string, error) {
			res, err := harness.RunBTreeRecovery(recovery.VolatileSelectiveRedo, 80, seed)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		}},
	{"lockrecovery", "E10", "lock-space recovery: LCB loss, release, and rebuild", "section 4.2.2",
		func(seed int64, o *obs.Observer) (string, error) {
			var b strings.Builder
			for _, chained := range []bool{false, true} {
				res, err := harness.RunLockRecovery(recovery.VolatileSelectiveRedo, 8, seed, chained, o)
				if err != nil {
					return "", err
				}
				b.WriteString(res.Table())
			}
			return b.String(), nil
		}},
	{"ablation", "E11", "ablation: the same crash scenarios with LBM disabled", "negative control; sections 3-4",
		func(seed int64, _ *obs.Observer) (string, error) {
			res, err := harness.RunAblation()
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		}},
	{"parallel", "E12", "parallel (multi-node) transactions: one crashed branch dooms all", "section 9",
		func(seed int64, _ *obs.Observer) (string, error) {
			res, err := harness.RunParallel(recovery.VolatileSelectiveRedo, 4)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		}},
	{"scaling", "E13", "availability scaling: lost work per year vs machine size", "sections 1, 3.3",
		func(seed int64, _ *obs.Observer) (string, error) {
			res, err := harness.RunScaling(nil, seed)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		}},
	{"hotspot", "E14", "access skew: migration pressure and force rates", "sections 3.2, 5.2 (worst-case sharing)",
		func(seed int64, _ *obs.Observer) (string, error) {
			res, err := harness.RunHotspot(nil, seed)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		}},
	{"osstruct", "E15", "operating-system structures: semaphores and the disk map", "section 9 (conclusions)",
		func(seed int64, _ *obs.Observer) (string, error) {
			res, err := harness.RunOSStruct()
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		}},
	{"depcensus", "E17", "dependency census: cross-node dependencies per LBM discipline", "sections 3-4 (the hazard LBM prevents, quantified)",
		func(seed int64, _ *obs.Observer) (string, error) {
			res, err := harness.RunDepCensus(seed)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		}},
	{"parrecovery", "E18", "sequential vs parallel restart-recovery makespan", "section 4.1.2 (node-parallel restart), this implementation's worker pipeline",
		func(seed int64, _ *obs.Observer) (string, error) {
			// -recoverworkers narrows the sweep to sequential vs that
			// fan-out; unset, the standard 0/1/2/4/8 sweep runs.
			var workers []int
			if obsFlags.RecoverWorkers > 0 {
				workers = []int{0, obsFlags.RecoverWorkers}
			}
			res, err := harness.RunParRecovery(seed, workers)
			if err != nil {
				return "", err
			}
			out := res.Table()
			if obsFlags.Prof {
				// -prof: rerun the widest fan-out profiled and append the
				// contended-stripes + worker busy/wait breakdown.
				pres, err := harness.RunRecoveryProfile(seed, workers)
				if err != nil {
					return "", err
				}
				out += "\n" + pres.Report()
			}
			return out, nil
		}},
	{"audit", "E19", "online-auditor overhead and violation census", "sections 3-4 (the LBM invariant, checked live); E11's ablation, online",
		func(seed int64, _ *obs.Observer) (string, error) {
			res, err := harness.RunAuditOverhead(seed)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		}},
	{"recoveryprofile", "E20", "parallel-recovery wall-clock attribution (busy / lock-wait / condvar / idle / merge)", "this implementation's contention profiler over the E18 workload",
		func(seed int64, _ *obs.Observer) (string, error) {
			// -recoverworkers narrows the sweep to sequential vs that
			// fan-out; unset, the standard 0/2/4/8 sweep runs.
			var workers []int
			if obsFlags.RecoverWorkers > 0 {
				workers = []int{0, obsFlags.RecoverWorkers}
			}
			res, err := harness.RunRecoveryProfile(seed, workers)
			if err != nil {
				return "", err
			}
			return res.Report(), nil
		}},
	{"workbalance", "E23", "per-worker busy/idle balance: per-item dispatch vs work-stealing chunks", "this implementation's recovery fan-out; the E18 workload A/B'd on the dispatch strategy",
		func(seed int64, _ *obs.Observer) (string, error) {
			res, err := harness.RunWorkBalance(seed, obsFlags.RecoverWorkers)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		}},
	{"waterfall", "E22", "per-transaction latency waterfalls: causal attribution coverage, tail samples, and recorder overhead", "this implementation's observability layer; sections 5-6 (where each transaction's time went)",
		func(seed int64, _ *obs.Observer) (string, error) {
			res, err := harness.RunWaterfall(seed)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		}},
	{"recoverydebt", "E24", "recovery-debt estimator: calibrated replay-time estimates vs measured recovery, MTTR accounting, attribution coverage", "this implementation's observability layer; section 5 (how much recovery a crash would cost right now)",
		func(seed int64, _ *obs.Observer) (string, error) {
			res, err := harness.RunRecoveryDebt(seed)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		}},
}

func expNames() []string {
	names := make([]string, 0, len(experiments)+1)
	names = append(names, "all")
	for _, e := range experiments {
		names = append(names, e.name)
	}
	return names
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: smdb-bench [-exp %s] [-seed N] [-trace out.json] [-metrics]\n",
		strings.Join(expNames(), "|"))
}

func main() {
	exp := flag.String("exp", "all", "experiment to run ("+strings.Join(expNames(), ", ")+")")
	seed := flag.Int64("seed", 1, "workload seed")
	obsFlags = obscli.AddFlags(flag.CommandLine)
	flag.Usage = usage
	flag.Parse()

	if err := obsFlags.RejectSched("smdb-bench"); err != nil {
		fmt.Fprintf(os.Stderr, "smdb-bench: %v\n", err)
		os.Exit(1)
	}
	known := *exp == "all"
	for _, e := range experiments {
		if e.name == *exp {
			known = true
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "smdb-bench: unknown experiment %q\n", *exp)
		usage()
		os.Exit(1)
	}

	stack, err := obsFlags.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "smdb-bench: %v\n", err)
		os.Exit(1)
	}
	tracer := stack.Obs

	// Every experiment's schedule derives from this seed; print it so any
	// run — especially a failing one in CI — is reproducible verbatim.
	fmt.Printf("seed: %d (rerun with -seed %d to reproduce)\n", *seed, *seed)

	ran := 0
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		fmt.Printf("\n=== %s: %s\n    (paper: %s)\n\n", e.id, e.title, e.source)
		table, err := e.run(*seed, tracer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smdb-bench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Print(table)
		ran++
	}
	if ran == 0 {
		usage()
		os.Exit(1)
	}

	if obsFlags.Metrics {
		// In addition to the shared latency table, the bench prints the
		// Prometheus exposition itself: CI diffs it for exposition-format
		// regressions without needing a live scrape.
		fmt.Printf("\n=== observability metrics\n\n")
		if err := tracer.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "smdb-bench: metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if err := stack.Finish(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "smdb-bench: %v\n", err)
		os.Exit(1)
	}
}
