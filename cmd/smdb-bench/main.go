// Command smdb-bench runs the experiments that regenerate the paper's
// table, measured numbers, and quantitative claims (DESIGN.md experiment
// index E1-E10), printing each as an aligned text table.
//
// Usage:
//
//	smdb-bench [-exp all|table1|linelock|aborts|runtime|restart|forces|broadcast|locks|btree|lockrecovery] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"smdb/internal/harness"
	"smdb/internal/recovery"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, linelock, aborts, runtime, restart, forces, broadcast, locks, btree, lockrecovery, ablation, parallel, scaling, hotspot, osstruct)")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	run := func(name string) bool { return *exp == "all" || *exp == name }
	header := func(id, title, source string) {
		fmt.Printf("\n=== %s: %s\n    (paper: %s)\n\n", id, title, source)
	}
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "smdb-bench: %v\n", err)
		os.Exit(1)
	}

	if run("table1") {
		header("E1", "incremental overheads of the IFA protocols", "Table 1")
		res, err := harness.RunTable1(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Table())
	}
	if run("linelock") {
		header("E2", "line-lock acquisition latency vs contention", "section 5.1 measurements")
		res, err := harness.RunLineLock(nil, 200, 0)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Table())
	}
	if run("aborts") {
		header("E3", "unnecessary aborts after a one-node crash", "sections 1, 3, 9")
		res, err := harness.RunAborts(8, nil, nil, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Table())
	}
	if run("runtime") {
		header("E4", "failure-free runtime cost per protocol", "sections 4.1.1, 5, 7")
		res, err := harness.RunRuntime(8, 0.5, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Table())
	}
	if run("restart") {
		header("E5", "restart recovery: Redo All vs Selective Redo", "section 4.1.2")
		res, err := harness.RunRestart(nil, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Table())
	}
	if run("forces") {
		header("E6", "log-force frequency vs inter-node sharing", "section 5.2")
		res, err := harness.RunForces(nil, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Table())
	}
	if run("broadcast") {
		header("E7", "write-broadcast coherency: no migration, undo-only recovery", "section 7")
		res, err := harness.RunBroadcast(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Table())
	}
	if run("locks") {
		header("E8", "SM locking vs message-passing (shared-disk) locking", "sections 4.2.2, 7, ref [20]")
		res, err := harness.RunLocks(nil, 200, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Table())
	}
	if run("btree") {
		header("E9", "B-tree crash recovery with early-committed splits", "section 4.2.1")
		res, err := harness.RunBTreeRecovery(recovery.VolatileSelectiveRedo, 80, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Table())
	}
	if run("lockrecovery") {
		header("E10", "lock-space recovery: LCB loss, release, and rebuild", "section 4.2.2")
		for _, chained := range []bool{false, true} {
			res, err := harness.RunLockRecovery(recovery.VolatileSelectiveRedo, 8, *seed, chained)
			if err != nil {
				fail(err)
			}
			fmt.Print(res.Table())
		}
	}
	if run("ablation") {
		header("E11", "ablation: the same crash scenarios with LBM disabled", "negative control; sections 3-4")
		res, err := harness.RunAblation()
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Table())
	}
	if run("scaling") {
		header("E13", "availability scaling: lost work per year vs machine size", "sections 1, 3.3")
		res, err := harness.RunScaling(nil, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Table())
	}
	if run("hotspot") {
		header("E14", "access skew: migration pressure and force rates", "sections 3.2, 5.2 (worst-case sharing)")
		res, err := harness.RunHotspot(nil, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Table())
	}
	if run("osstruct") {
		header("E15", "operating-system structures: semaphores and the disk map", "section 9 (conclusions)")
		res, err := harness.RunOSStruct()
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Table())
	}
	if run("parallel") {
		header("E12", "parallel (multi-node) transactions: one crashed branch dooms all", "section 9")
		res, err := harness.RunParallel(recovery.VolatileSelectiveRedo, 4)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Table())
	}
}
