// Command smdb-waldump is the offline WAL forensics tool: it decodes one or
// more raw log devices — captured from a live run or the wal-node*.wal files
// a -debt flight-recorder dump carries — into per-record, per-transaction,
// and per-node space attribution, truncation-readiness analysis (how much of
// the log a checkpoint could reclaim, and which transaction anchors the
// rest), and redo/undo span histograms.
//
// Usage:
//
//	smdb-waldump [-json] [-records] [-top 10] <file.wal | flight-dump-dir>...
//
// A directory argument is scanned for wal-node*.wal captures, so pointing
// the tool at a flight dump analyses every node's log at crash time. The
// node is inferred from the wal-node<N>.wal name when present, else from the
// first attributed record's transaction ID (the owning node lives in its
// top 16 bits).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"

	"smdb/internal/wal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errW io.Writer) int {
	fs := flag.NewFlagSet("smdb-waldump", flag.ContinueOnError)
	fs.SetOutput(errW)
	jsonOut := fs.Bool("json", false, "emit the analysis as JSON instead of text")
	records := fs.Bool("records", false, "include the per-record listing")
	top := fs.Int("top", 0, "show only the top-N transactions by bytes (0 = all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(errW, "smdb-waldump: no input files (raw WAL device captures or flight-dump directories)")
		fs.Usage()
		return 2
	}
	paths, err := expandArgs(fs.Args())
	if err != nil {
		fmt.Fprintf(errW, "smdb-waldump: %v\n", err)
		return 1
	}
	var reports []*fileReport
	for _, p := range paths {
		buf, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintf(errW, "smdb-waldump: %v\n", err)
			return 1
		}
		reports = append(reports, analyze(p, buf))
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(dumpDoc{Files: reports}); err != nil {
			fmt.Fprintf(errW, "smdb-waldump: %v\n", err)
			return 1
		}
		return 0
	}
	for i, rep := range reports {
		if i > 0 {
			fmt.Fprintln(out)
		}
		writeText(out, rep, *records, *top)
	}
	if len(reports) > 1 {
		writeTotals(out, reports)
	}
	return 0
}

// expandArgs resolves directory arguments into the wal-node*.wal captures a
// flight dump carries; plain files pass through.
func expandArgs(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		info, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			out = append(out, a)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(a, "wal-node*.wal"))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("%s: no wal-node*.wal captures (was the dump taken with -debt?)", a)
		}
		sort.Strings(matches)
		out = append(out, matches...)
	}
	return out, nil
}

// dumpDoc is the -json document: one entry per analysed file.
type dumpDoc struct {
	Files []*fileReport `json:"files"`
}

// fileReport is the full forensic analysis of one decoded log.
type fileReport struct {
	Path      string `json:"path"`
	Node      int    `json:"node"` // -1 when not inferable
	Records   int    `json:"records"`
	Bytes     int64  `json:"bytes"`
	TornBytes int    `json:"torn_bytes"`

	// Truncation readiness: the safe point mirrors the online debt model —
	// min(last checkpoint, oldest active transaction's first LSN - 1).
	LastCkpt     int64  `json:"last_checkpoint_lsn"`
	OldestActive int64  `json:"oldest_active_first_lsn"` // 0 = none
	OldestTxn    string `json:"oldest_active_txn,omitempty"`
	SafeLSN      int64  `json:"safe_lsn"`
	TruncRecords int    `json:"truncatable_records"`
	TruncBytes   int64  `json:"truncatable_bytes"`

	Types    []typeRow    `json:"type_attribution"`
	Txns     []txnRow     `json:"txn_attribution"`
	Nodes    []nodeRow    `json:"node_attribution"`
	UndoHist []histBucket `json:"undo_span_histogram"`
	RedoHist []histBucket `json:"redo_span_histogram"`

	Recs []recRow `json:"records_list,omitempty"`
}

type typeRow struct {
	Type    string `json:"type"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
}

type txnRow struct {
	Txn     string `json:"txn"`
	Node    int    `json:"node"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
	First   int64  `json:"first_lsn"`
	Last    int64  `json:"last_lsn"`
	Status  string `json:"status"` // committed | aborted | active
}

type nodeRow struct {
	Node    int   `json:"node"` // -1 = unattributed (txn 0, non-checkpoint)
	Records int   `json:"records"`
	Bytes   int64 `json:"bytes"`
}

type histBucket struct {
	Label string `json:"label"` // "1", "2", "3-4", "5-8", ...
	Count int    `json:"count"`
}

type recRow struct {
	LSN    int64  `json:"lsn"`
	Type   string `json:"type"`
	Txn    string `json:"txn,omitempty"`
	Prev   int64  `json:"prev_lsn,omitempty"`
	Page   int64  `json:"page,omitempty"`
	Slot   int    `json:"slot,omitempty"`
	Before int    `json:"before_bytes,omitempty"`
	After  int    `json:"after_bytes,omitempty"`
	Bytes  int    `json:"bytes"`
}

var nodeFileRe = regexp.MustCompile(`^wal-node(\d+)\.wal$`)

// analyze decodes buf (one node's raw log device) and builds the report.
func analyze(path string, buf []byte) *fileReport {
	recs, torn := wal.DecodeAll(buf)
	rep := &fileReport{Path: path, Node: -1, Records: len(recs), TornBytes: torn}
	if m := nodeFileRe.FindStringSubmatch(filepath.Base(path)); m != nil {
		rep.Node, _ = strconv.Atoi(m[1])
	}

	type txnState struct {
		row  txnRow
		id   wal.TxnID
		done bool
	}
	txns := map[wal.TxnID]*txnState{}
	var txnOrder []wal.TxnID
	typeCount := map[string]*typeRow{}
	nodeCount := map[int]*nodeRow{}
	// pageFirst tracks, per page, the first physical record since the last
	// checkpoint — the start of that page's redo span.
	pageFirst := map[int64]int64{}

	for i := range recs {
		r := &recs[i]
		sz := wal.EncodedSize(r)
		rep.Bytes += int64(sz)
		lsn := int64(r.LSN)

		tn := r.Type.String()
		tr := typeCount[tn]
		if tr == nil {
			tr = &typeRow{Type: tn}
			typeCount[tn] = tr
		}
		tr.Records++
		tr.Bytes += int64(sz)

		// Node attribution: a record belongs to its transaction's node;
		// checkpoints belong to the log's node; anything else with txn 0 is
		// unattributed (tracked as node -1).
		node := -1
		switch {
		case r.Txn != 0:
			node = int(r.Txn.Node())
			if rep.Node < 0 {
				rep.Node = node
			}
		case r.Type == wal.TypeCheckpoint:
			node = rep.Node
		}
		nr := nodeCount[node]
		if nr == nil {
			nr = &nodeRow{Node: node}
			nodeCount[node] = nr
		}
		nr.Records++
		nr.Bytes += int64(sz)

		if r.Type == wal.TypeCheckpoint {
			rep.LastCkpt = lsn
			pageFirst = map[int64]int64{}
		}
		if r.Txn != 0 {
			ts := txns[r.Txn]
			if ts == nil {
				ts = &txnState{id: r.Txn, row: txnRow{
					Txn: r.Txn.String(), Node: int(r.Txn.Node()), First: lsn, Status: "active",
				}}
				txns[r.Txn] = ts
				txnOrder = append(txnOrder, r.Txn)
			}
			ts.row.Records++
			ts.row.Bytes += int64(sz)
			ts.row.Last = lsn
			switch r.Type {
			case wal.TypeCommit:
				ts.row.Status = "committed"
				ts.done = true
			case wal.TypeAbort:
				ts.row.Status = "aborted"
				ts.done = true
			}
		}
		if r.Type == wal.TypeUpdate || r.Type == wal.TypeCLR {
			p := int64(r.Page)
			if _, ok := pageFirst[p]; !ok {
				pageFirst[p] = lsn
			}
		}
	}

	// Truncation readiness. The oldest active transaction anchors the log:
	// nothing from its first LSN on can go, however old the checkpoint.
	last := int64(len(recs))
	for _, id := range txnOrder {
		ts := txns[id]
		if ts.done {
			continue
		}
		if rep.OldestActive == 0 || ts.row.First < rep.OldestActive {
			rep.OldestActive = ts.row.First
			rep.OldestTxn = ts.row.Txn
		}
	}
	rep.SafeLSN = rep.LastCkpt
	if rep.OldestActive > 0 && rep.OldestActive-1 < rep.SafeLSN {
		rep.SafeLSN = rep.OldestActive - 1
	}
	if rep.SafeLSN > last {
		rep.SafeLSN = last
	}
	for i := range recs {
		if int64(recs[i].LSN) > rep.SafeLSN {
			break
		}
		rep.TruncRecords++
		rep.TruncBytes += int64(wal.EncodedSize(&recs[i]))
	}

	// Undo-span histogram: per transaction, the LSN span of its chain — how
	// far back an undo walk reaches. Redo-span histogram: per page with
	// post-checkpoint physical records, the distance from its first such
	// record to the log end — how much log a redo scan replays for it.
	var undoSpans, redoSpans []int64
	for _, id := range txnOrder {
		ts := txns[id]
		undoSpans = append(undoSpans, ts.row.Last-ts.row.First+1)
	}
	for _, first := range pageFirst {
		redoSpans = append(redoSpans, last-first+1)
	}
	rep.UndoHist = histogram(undoSpans)
	rep.RedoHist = histogram(redoSpans)

	for _, tr := range typeCount {
		rep.Types = append(rep.Types, *tr)
	}
	sort.Slice(rep.Types, func(i, j int) bool {
		if rep.Types[i].Bytes != rep.Types[j].Bytes {
			return rep.Types[i].Bytes > rep.Types[j].Bytes
		}
		return rep.Types[i].Type < rep.Types[j].Type
	})
	for _, id := range txnOrder {
		rep.Txns = append(rep.Txns, txns[id].row)
	}
	sort.Slice(rep.Txns, func(i, j int) bool {
		if rep.Txns[i].Bytes != rep.Txns[j].Bytes {
			return rep.Txns[i].Bytes > rep.Txns[j].Bytes
		}
		return rep.Txns[i].First < rep.Txns[j].First
	})
	for _, nr := range nodeCount {
		rep.Nodes = append(rep.Nodes, *nr)
	}
	sort.Slice(rep.Nodes, func(i, j int) bool { return rep.Nodes[i].Node < rep.Nodes[j].Node })

	for i := range recs {
		r := &recs[i]
		row := recRow{
			LSN: int64(r.LSN), Type: r.Type.String(), Prev: int64(r.PrevLSN),
			Page: int64(r.Page), Slot: int(r.Slot),
			Before: len(r.Before), After: len(r.After), Bytes: wal.EncodedSize(r),
		}
		if r.Txn != 0 {
			row.Txn = r.Txn.String()
		}
		rep.Recs = append(rep.Recs, row)
	}
	return rep
}

// histogram buckets spans into powers of two: 1, 2, 3-4, 5-8, 9-16, ...
func histogram(spans []int64) []histBucket {
	if len(spans) == 0 {
		return nil
	}
	counts := map[int]int{}
	maxB := 0
	for _, s := range spans {
		b := 0
		for hi := int64(1); hi < s; hi <<= 1 {
			b++
		}
		counts[b]++
		if b > maxB {
			maxB = b
		}
	}
	var out []histBucket
	for b := 0; b <= maxB; b++ {
		if counts[b] == 0 {
			continue
		}
		lo := int64(1) << uint(b-1)
		hi := int64(1) << uint(b)
		label := strconv.FormatInt(hi, 10)
		if b > 1 {
			label = fmt.Sprintf("%d-%d", lo+1, hi)
		}
		out = append(out, histBucket{Label: label, Count: counts[b]})
	}
	return out
}

func writeText(out io.Writer, rep *fileReport, records bool, top int) {
	node := "?"
	if rep.Node >= 0 {
		node = strconv.Itoa(rep.Node)
	}
	fmt.Fprintf(out, "== %s (node %s)\n", rep.Path, node)
	fmt.Fprintf(out, "records: %d (%d bytes), torn tail: %d bytes\n", rep.Records, rep.Bytes, rep.TornBytes)
	anchor := "none"
	if rep.OldestActive > 0 {
		anchor = fmt.Sprintf("%s @ LSN %d", rep.OldestTxn, rep.OldestActive)
	}
	fmt.Fprintf(out, "last checkpoint: LSN %d, oldest active txn: %s\n", rep.LastCkpt, anchor)
	pct := 0.0
	if rep.Bytes > 0 {
		pct = 100 * float64(rep.TruncBytes) / float64(rep.Bytes)
	}
	fmt.Fprintf(out, "safe point: LSN %d — truncatable: %d records (%d bytes, %.1f%%)\n",
		rep.SafeLSN, rep.TruncRecords, rep.TruncBytes, pct)

	fmt.Fprintln(out, "type attribution:")
	for _, tr := range rep.Types {
		fmt.Fprintf(out, "  %-14s %6d recs  %8d bytes\n", tr.Type, tr.Records, tr.Bytes)
	}

	fmt.Fprintln(out, "transaction attribution:")
	rows := rep.Txns
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	for _, tx := range rows {
		fmt.Fprintf(out, "  %-8s node %-3d %5d recs  %8d bytes  LSN %d..%d  %s\n",
			tx.Txn, tx.Node, tx.Records, tx.Bytes, tx.First, tx.Last, tx.Status)
	}
	if n := len(rep.Txns) - len(rows); n > 0 {
		fmt.Fprintf(out, "  ... %d more (rerun without -top)\n", n)
	}

	fmt.Fprintln(out, "per-node attribution:")
	for _, nr := range rep.Nodes {
		label := fmt.Sprintf("node %d", nr.Node)
		if nr.Node < 0 {
			label = "unattributed"
		}
		fmt.Fprintf(out, "  %-13s %6d recs  %8d bytes\n", label, nr.Records, nr.Bytes)
	}

	writeHist(out, "undo-span histogram (LSN span per txn chain):", rep.UndoHist)
	writeHist(out, "redo-span histogram (LSNs replayed per page since checkpoint):", rep.RedoHist)

	if records {
		fmt.Fprintln(out, "records:")
		for _, r := range rep.Recs {
			txn := "-"
			if r.Txn != "" {
				txn = r.Txn
			}
			fmt.Fprintf(out, "  lsn=%-6d %-14s txn=%-8s prev=%-6d page=%-4d slot=%-3d before=%-3d after=%-3d %d bytes\n",
				r.LSN, r.Type, txn, r.Prev, r.Page, r.Slot, r.Before, r.After, r.Bytes)
		}
	}
}

func writeHist(out io.Writer, title string, h []histBucket) {
	fmt.Fprintln(out, title)
	if len(h) == 0 {
		fmt.Fprintln(out, "  (empty)")
		return
	}
	fmt.Fprint(out, " ")
	for _, b := range h {
		fmt.Fprintf(out, " %s:%d", b.Label, b.Count)
	}
	fmt.Fprintln(out)
}

func writeTotals(out io.Writer, reps []*fileReport) {
	var recs, trunc int
	var bytes, truncBytes int64
	torn := 0
	for _, r := range reps {
		recs += r.Records
		bytes += r.Bytes
		trunc += r.TruncRecords
		truncBytes += r.TruncBytes
		torn += r.TornBytes
	}
	fmt.Fprintf(out, "\ntotals: %d files, %d records (%d bytes), truncatable %d records (%d bytes), torn %d bytes\n",
		len(reps), recs, bytes, trunc, truncBytes, torn)
}
