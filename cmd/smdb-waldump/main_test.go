package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smdb/internal/wal"
)

// goldenLog builds a small deterministic node-0 log: a checkpoint, one
// committed transaction, one aborted, and one left active (the truncation
// anchor), plus a torn tail.
func goldenLog() []byte {
	t1 := wal.MakeTxnID(0, 1)
	t2 := wal.MakeTxnID(0, 2)
	t3 := wal.MakeTxnID(0, 3)
	recs := []wal.Record{
		{Type: wal.TypeCheckpoint}, // 1
		{Type: wal.TypeUpdate, Txn: t1, Page: 4, Slot: 2, Before: []byte("aa"), After: []byte("bb")},   // 2
		{Type: wal.TypeUpdate, Txn: t2, Page: 5, Slot: 0, Before: []byte("cc"), After: []byte("dddd")}, // 3
		{Type: wal.TypeCommit, Txn: t1, PrevLSN: 2},                                                    // 4
		{Type: wal.TypeUpdate, Txn: t3, Page: 4, Slot: 3, Before: []byte("x"), After: []byte("y")},     // 5
		{Type: wal.TypeAbort, Txn: t2, PrevLSN: 3},                                                     // 6
	}
	var buf []byte
	for i := range recs {
		buf = append(buf, wal.Marshal(&recs[i])...)
	}
	return append(buf, 0xde, 0xad, 0xbe) // torn tail
}

func TestAnalyzeGoldenText(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-node0.wal")
	if err := os.WriteFile(path, goldenLog(), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errW bytes.Buffer
	if code := run([]string{"-records", path}, &out, &errW); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errW.String())
	}
	got := out.String()
	for _, want := range []string{
		"== " + path + " (node 0)",
		"records: 6 (", "torn tail: 3 bytes",
		"last checkpoint: LSN 1, oldest active txn: t0.3 @ LSN 5",
		// safe = min(ckpt=1, oldestActive-1=4) = 1: only the checkpoint goes.
		"safe point: LSN 1 — truncatable: 1 records",
		"type attribution:",
		"update", "commit", "abort", "checkpoint",
		"transaction attribution:",
		"t0.1", "committed",
		"t0.2", "aborted",
		"t0.3", "active",
		"per-node attribution:",
		"node 0",
		"undo-span histogram",
		"redo-span histogram",
		"records:",
		"lsn=1", "lsn=6",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("text output missing %q:\n%s", want, got)
		}
	}
	// The checkpoint record is attributed to the log's node, not dropped.
	if strings.Contains(got, "unattributed") {
		t.Errorf("all records should be attributed:\n%s", got)
	}
}

func TestAnalyzeGoldenJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-node0.wal")
	if err := os.WriteFile(path, goldenLog(), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errW bytes.Buffer
	if code := run([]string{"-json", path}, &out, &errW); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errW.String())
	}
	var doc struct {
		Files []struct {
			Node         int    `json:"node"`
			Records      int    `json:"records"`
			TornBytes    int    `json:"torn_bytes"`
			LastCkpt     int64  `json:"last_checkpoint_lsn"`
			OldestActive int64  `json:"oldest_active_first_lsn"`
			OldestTxn    string `json:"oldest_active_txn"`
			SafeLSN      int64  `json:"safe_lsn"`
			TruncRecords int    `json:"truncatable_records"`
			Types        []struct {
				Type    string `json:"type"`
				Records int    `json:"records"`
			} `json:"type_attribution"`
			Txns []struct {
				Txn    string `json:"txn"`
				Status string `json:"status"`
			} `json:"txn_attribution"`
			UndoHist []struct {
				Label string `json:"label"`
				Count int    `json:"count"`
			} `json:"undo_span_histogram"`
		} `json:"files"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(doc.Files) != 1 {
		t.Fatalf("files = %d, want 1", len(doc.Files))
	}
	f := doc.Files[0]
	if f.Node != 0 || f.Records != 6 || f.TornBytes != 3 {
		t.Errorf("node/records/torn = %d/%d/%d, want 0/6/3", f.Node, f.Records, f.TornBytes)
	}
	if f.LastCkpt != 1 || f.OldestActive != 5 || f.OldestTxn != "t0.3" || f.SafeLSN != 1 || f.TruncRecords != 1 {
		t.Errorf("truncation analysis = ckpt %d oldest %d (%s) safe %d trunc %d, want 1/5/t0.3/1/1",
			f.LastCkpt, f.OldestActive, f.OldestTxn, f.SafeLSN, f.TruncRecords)
	}
	types := map[string]int{}
	for _, tr := range f.Types {
		types[tr.Type] = tr.Records
	}
	if types["update"] != 3 || types["commit"] != 1 || types["abort"] != 1 || types["checkpoint"] != 1 {
		t.Errorf("type attribution = %v", types)
	}
	status := map[string]string{}
	for _, tx := range f.Txns {
		status[tx.Txn] = tx.Status
	}
	if status["t0.1"] != "committed" || status["t0.2"] != "aborted" || status["t0.3"] != "active" {
		t.Errorf("txn statuses = %v", status)
	}
	// Spans: t0.1 = 2..4 (3), t0.2 = 3..6 (4), t0.3 = 5..5 (1) →
	// buckets "1":1, "3-4":2.
	hist := map[string]int{}
	for _, b := range f.UndoHist {
		hist[b.Label] = b.Count
	}
	if hist["1"] != 1 || hist["3-4"] != 2 {
		t.Errorf("undo-span histogram = %v, want 1:1 3-4:2", hist)
	}
}

func TestDirectoryExpansionAndTotals(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"wal-node0.wal", "wal-node1.wal"} {
		if err := os.WriteFile(filepath.Join(dir, name), goldenLog(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var out, errW bytes.Buffer
	if code := run([]string{dir}, &out, &errW); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errW.String())
	}
	got := out.String()
	if !strings.Contains(got, "wal-node0.wal (node 0)") || !strings.Contains(got, "wal-node1.wal (node 1)") {
		t.Errorf("directory scan missed a capture:\n%s", got)
	}
	if !strings.Contains(got, "totals: 2 files, 12 records") {
		t.Errorf("missing aggregate totals:\n%s", got)
	}

	// A directory without captures is a usage error, not a silent pass.
	empty := t.TempDir()
	if code := run([]string{empty}, &out, &errW); code != 1 {
		t.Errorf("empty dir run = %d, want 1", code)
	}
	if !strings.Contains(errW.String(), "no wal-node*.wal captures") {
		t.Errorf("missing empty-dir diagnostic: %s", errW.String())
	}
}

func TestNoArgsUsage(t *testing.T) {
	var out, errW bytes.Buffer
	if code := run(nil, &out, &errW); code != 2 {
		t.Errorf("no-args run = %d, want 2", code)
	}
}
