// Command smdb-sim runs a transaction workload on the simulated
// shared-memory multiprocessor, crashes nodes mid-flight, runs restart
// recovery, and verifies Isolated Failure Atomicity — a one-shot
// demonstration of the paper's protocols under any configuration.
//
// Usage:
//
//	smdb-sim [-nodes 8] [-protocol volatile-selective] [-crash 3,5]
//	         [-sharing 0.6] [-recsperline 4] [-coherency invalidate]
//	         [-txns 8] [-ops 10] [-seed 1]
//	         [-trace out.json] [-metrics] [-http 127.0.0.1:8321]
//	         [-httphold 30s] [-flightdir dumps/] [-audit] [-window 1ms]
//
// The observability flags are the shared set (internal/obscli): -trace
// writes the run as Chrome trace-event JSON (load it at ui.perfetto.dev),
// -metrics prints the latency histograms and event counts, -http serves the
// live introspection endpoints while the run executes, and -flightdir
// enables crash flight-recorder dumps. -audit arms the online IFA auditor
// (per-transaction audit trails, continuous logging-before-migration
// checks, and -window-bucketed time-series metrics with the anomaly
// watchdog), served at /audit/txn, /audit/violations, and /timeseries and
// summarized after the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"smdb/internal/machine"
	"smdb/internal/obs"
	"smdb/internal/obscli"
	"smdb/internal/recovery"
	"smdb/internal/workload"
)

var protocols = map[string]recovery.Protocol{
	"baseline":           recovery.BaselineFA,
	"volatile-redoall":   recovery.VolatileRedoAll,
	"volatile-selective": recovery.VolatileSelectiveRedo,
	"stable-eager":       recovery.StableEager,
	"stable-triggered":   recovery.StableTriggered,
	"ablated":            recovery.AblatedNoLBM,
}

func main() {
	nodes := flag.Int("nodes", 8, "number of processor/memory pairs")
	protoName := flag.String("protocol", "volatile-selective", "baseline | volatile-redoall | volatile-selective | stable-eager | stable-triggered | ablated")
	crashSpec := flag.String("crash", "", "comma-separated node IDs to crash mid-flight (default: the last node)")
	sharing := flag.Float64("sharing", 0.6, "fraction of operations on shared records")
	recsPerLine := flag.Int("recsperline", 4, "records per 128-byte cache line")
	coherency := flag.String("coherency", "invalidate", "invalidate | broadcast")
	chained := flag.Bool("chained", false, "multi-line (chained) lock control blocks")
	txns := flag.Int("txns", 8, "transactions per node")
	ops := flag.Int("ops", 10, "operations per transaction")
	seed := flag.Int64("seed", 1, "workload seed")
	obsFlags := obscli.AddFlags(flag.CommandLine)
	flag.Parse()

	if err := obsFlags.RejectSched("smdb-sim"); err != nil {
		fatal(err)
	}
	proto, ok := protocols[*protoName]
	if !ok {
		fatal(fmt.Errorf("unknown protocol %q", *protoName))
	}
	coh := machine.WriteInvalidate
	if *coherency == "broadcast" {
		coh = machine.WriteBroadcast
	}
	crash := []machine.NodeID{machine.NodeID(*nodes - 1)}
	if *crashSpec != "" {
		crash = crash[:0]
		for _, part := range strings.Split(*crashSpec, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 0 || n >= *nodes {
				fatal(fmt.Errorf("bad -crash entry %q", part))
			}
			crash = append(crash, machine.NodeID(n))
		}
	}

	db, err := recovery.New(recovery.Config{
		Machine:         machine.Config{Nodes: *nodes, Coherency: coh},
		Protocol:        proto,
		RecsPerLine:     *recsPerLine,
		Pages:           32,
		ChainedLCBs:     *chained,
		RecoveryWorkers: obsFlags.RecoverWorkers,

		GroupCommitForces: obsFlags.GroupForce,
	})
	if err != nil {
		fatal(err)
	}
	stack, err := obsFlags.Build()
	if err != nil {
		fatal(err)
	}
	stack.Attach(db)
	fmt.Printf("machine: %d nodes, %s coherency, %d records per %dB line\n",
		*nodes, coh, *recsPerLine, db.M.LineSize())
	fmt.Printf("protocol: %s (IFA: %v)\n", proto, proto.IFA())
	fmt.Printf("seed: %d (rerun with -seed %d to reproduce)\n\n", *seed, *seed)

	if err := workload.Seed(db, 0); err != nil {
		fatal(err)
	}
	r := workload.NewRunner(db, workload.Spec{
		TxnsPerNode: *txns, OpsPerTxn: *ops,
		ReadFraction: 0.4, SharingFraction: *sharing, Seed: *seed,
	})
	// Run enough steps that every node has a transaction in flight.
	mid, err := r.RunUntilMidFlight(*ops * *txns / 2)
	if err != nil {
		fatal(err)
	}
	active := db.ActiveTxns(machine.NoNode)
	fmt.Printf("workload: %s\n", mid)
	fmt.Printf("in flight at crash: %d transactions across %d nodes\n\n", len(active), *nodes)

	rep := db.Crash(crash...)
	fmt.Printf("CRASH of node(s) %v: %d cache lines destroyed, %d orphaned on survivors\n",
		rep.Crashed, len(rep.LostLines), len(rep.OrphanedLines))

	rec, err := db.Recover(crash)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("recovery (%s):\n", rec.Protocol)
	fmt.Printf("  aborted transactions : %d %v\n", len(rec.Aborted), rec.Aborted)
	fmt.Printf("  redo applied/skipped : %d/%d\n", rec.RedoApplied, rec.RedoSkipped)
	fmt.Printf("  undo applied         : %d\n", rec.UndoApplied)
	fmt.Printf("  tag-scan lines       : %d\n", rec.TagScanLines)
	fmt.Printf("  LCBs reinstalled     : %d, lock entries released: %d, locks replayed: %d\n",
		rec.LCBsReinstalled, rec.LockEntriesReleased, rec.LocksReplayed)
	fmt.Printf("  simulated duration   : %.2fms\n", float64(rec.SimTime)/1e6)
	fmt.Printf("  phase breakdown      : %s\n\n", obs.FormatPhases(rec.Phases))

	alive := db.M.AliveNodes()
	if len(alive) == 0 {
		fmt.Println("no survivors (whole machine crashed)")
		if err := stack.Finish(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	violations := db.CheckIFA(alive[0])
	if len(violations) > 0 {
		if dir, err := db.DumpFlight("ifa-violation"); err == nil && dir != "" {
			fmt.Fprintf(os.Stderr, "flight recorder: dumped %s\n", dir)
		}
	}
	exitCode := 0
	switch {
	case len(violations) == 0 && proto.IFA():
		fmt.Println("IFA check: PASS — crashed transactions fully undone, surviving transactions untouched")
	case len(violations) == 0 && proto == recovery.BaselineFA:
		fmt.Println("IFA check: PASS (vacuously — the baseline aborted every transaction in the system)")
	case len(violations) == 0:
		fmt.Println("IFA check: PASS (this run dodged the no-LBM hazards; see smdb-bench -exp ablation for the deterministic failure)")
	case proto.IFA():
		fmt.Printf("IFA check: FAIL (%d violations)\n", len(violations))
		for _, v := range violations {
			fmt.Printf("  %s\n", v)
		}
		exitCode = 1
	default:
		fmt.Printf("IFA check: FAIL as expected for %s (%d violations) — the hazards LBM exists to prevent:\n", proto, len(violations))
		for _, v := range violations {
			fmt.Printf("  %s\n", v)
		}
	}
	stack.PrintVerdicts(os.Stdout)
	st := db.M.Stats()
	fmt.Printf("\ncoherency traffic: %d migrations, %d downgrades, %d invalidations, %d lines lost\n",
		st.Migrations, st.Downgrades, st.Invalidations, st.LinesLost)

	if err := stack.Finish(os.Stdout); err != nil {
		fatal(err)
	}
	os.Exit(exitCode)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "smdb-sim: %v\n", err)
	os.Exit(1)
}
