// Command smdb-chaos runs seeded fault-injection schedules over the
// concurrent workload: crashes at line migrations and update windows, torn
// log tails, crashes during recovery itself (including the coordinator),
// and transient disk/log I/O errors. After every recovery it asserts the
// IFA checker; any violation fails the run.
//
// Usage:
//
//	smdb-chaos [-seeds 50] [-seed 1] [-nodes 4] [-protocol stable-eager]
//	           [-episodes 3] [-txns 6] [-ops 6] [-sharing 0.7]
//	           [-pmigration 0.02] [-pupdate 0.01] [-ptorn 0.02]
//	           [-precovery 0.3] [-pcoordinator 0.5] [-pioerror 0.05]
//	           [-maxcrashes 2] [-v] [-broken]
//	           [-trace out.json] [-metrics] [-http 127.0.0.1:8321]
//	           [-flightdir dumps/] [-audit] [-window 1ms]
//
// -seeds N sweeps N consecutive seeds starting at -seed. -broken runs the
// AblatedNoLBM negative control instead and *expects* the harness to catch
// at least one IFA violation across the sweep, exiting non-zero if the
// deliberately broken protocol slips through undetected.
//
// The shared observability flags (internal/obscli) additionally arm the
// dependency-graph explainer: every recovery's verdicts are cross-checked
// against the IFA checker, -flightdir captures a flight-recorder dump for
// every violating episode, and -http serves the live dependency graph of
// the seed currently running. -audit arms the online IFA auditor on top:
// per-transaction audit trails, continuous logging-before-migration checks
// (violations fail a real-protocol sweep and are *required* under -broken),
// and windowed time-series metrics with the anomaly watchdog, served at
// /audit/txn, /audit/violations, and /timeseries.
package main

import (
	"flag"
	"fmt"
	"os"

	"smdb/internal/fault"
	"smdb/internal/machine"
	"smdb/internal/obscli"
	"smdb/internal/recovery"
	"smdb/internal/workload"
)

var protocols = map[string]recovery.Protocol{
	"volatile-redoall":   recovery.VolatileRedoAll,
	"volatile-selective": recovery.VolatileSelectiveRedo,
	"stable-eager":       recovery.StableEager,
	"stable-triggered":   recovery.StableTriggered,
	"ablated":            recovery.AblatedNoLBM,
}

func main() {
	seeds := flag.Int("seeds", 50, "number of consecutive seeds to sweep")
	seed := flag.Int64("seed", 1, "first seed of the sweep")
	nodes := flag.Int("nodes", 4, "number of processor/memory pairs")
	protoName := flag.String("protocol", "stable-eager", "volatile-redoall | volatile-selective | stable-eager | stable-triggered | ablated")
	episodes := flag.Int("episodes", 3, "crash/recover episodes per seed")
	txns := flag.Int("txns", 6, "transactions per node per episode")
	ops := flag.Int("ops", 6, "operations per transaction")
	sharing := flag.Float64("sharing", 0.7, "fraction of operations on shared records")
	pMigration := flag.Float64("pmigration", 0.02, "P(crash at a database-line migration)")
	pUpdate := flag.Float64("pupdate", 0.01, "P(crash between log append and slot write)")
	pTorn := flag.Float64("ptorn", 0.02, "P(log force torn mid-write)")
	pRecovery := flag.Float64("precovery", 0.3, "P(crash at a recovery phase boundary)")
	pCoordinator := flag.Float64("pcoordinator", 0.5, "P(the in-recovery victim is the coordinator)")
	pIOError := flag.Float64("pioerror", 0.05, "P(transient I/O error per storage operation)")
	maxCrashes := flag.Int("maxcrashes", 2, "crash budget per episode")
	verbose := flag.Bool("v", false, "print every seed's result line, not just failures")
	broken := flag.Bool("broken", false, "run the AblatedNoLBM negative control and expect the harness to catch it")
	obsFlags := obscli.AddFlags(flag.CommandLine)
	flag.Parse()

	proto, ok := protocols[*protoName]
	if !ok {
		fatal(fmt.Errorf("unknown protocol %q", *protoName))
	}
	if *broken {
		proto = recovery.AblatedNoLBM
		// The no-LBM hazard needs a migration crash landing mid-workload;
		// unless the caller tuned it, raise the odds so the control is
		// demonstrable in a short sweep.
		tuned := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "pmigration" {
				tuned = true
			}
		})
		if !tuned {
			*pMigration = 0.35
		}
	}
	fmt.Printf("chaos: protocol=%s nodes=%d seeds=%d..%d episodes=%d (budget %d crashes/episode)\n",
		proto, *nodes, *seed, *seed+int64(*seeds)-1, *episodes, *maxCrashes)

	stack, err := obsFlags.Build()
	if err != nil {
		fatal(err)
	}

	violating, failed := 0, 0
	verdicts, doomed, mismatched := 0, 0, 0
	auditViolations, auditAnomalies, auditSeeds := 0, 0, 0
	for i := 0; i < *seeds; i++ {
		s := *seed + int64(i)
		db, err := recovery.New(recovery.Config{
			Machine:         machine.Config{Nodes: *nodes, Lines: 4096},
			Protocol:        proto,
			LinesPerPage:    4,
			RecsPerLine:     4,
			Pages:           16,
			LockTableLines:  128,
			RecoveryWorkers: obsFlags.RecoverWorkers,
		})
		if err != nil {
			fatal(err)
		}
		stack.Attach(db)
		inj := fault.New(fault.Plan{
			Seed:              s,
			PCrashAtMigration: *pMigration,
			PCrashAtUpdate:    *pUpdate,
			PTornForce:        *pTorn,
			PCrashInRecovery:  *pRecovery,
			PCoordinatorCrash: *pCoordinator,
			PIOError:          *pIOError,
			MaxCrashes:        *maxCrashes,
		})
		spec := workload.Spec{
			TxnsPerNode:     *txns,
			OpsPerTxn:       *ops,
			ReadFraction:    0.4,
			SharingFraction: *sharing,
			Seed:            s,
		}
		res, err := workload.RunChaos(db, inj, spec, *episodes)
		if err != nil {
			failed++
			fmt.Printf("seed %d: harness error: %v\n", s, err)
			continue
		}
		if len(res.Violations) > 0 {
			violating++
		}
		verdicts += res.Verdicts
		doomed += res.DoomedVerdicts
		auditViolations += res.AuditViolations
		auditAnomalies += res.AuditAnomalies
		if res.AuditViolations > 0 {
			auditSeeds++
		}
		if len(res.ExplainMismatches) > 0 {
			// The dependency explainer and the IFA checker disagreeing is a
			// harness bug regardless of the protocol under test.
			mismatched++
			fmt.Printf("seed %d: explainer/checker mismatch:\n", s)
			for _, m := range res.ExplainMismatches {
				fmt.Printf("  %s\n", m)
			}
		}
		if *verbose || (len(res.Violations) > 0 && !*broken) {
			fmt.Printf("%s\n", res)
			for _, v := range res.Violations {
				fmt.Printf("  %s\n", v)
			}
		}
	}
	if verdicts > 0 {
		fmt.Printf("explainer: %d verdicts, %d doomed survivors, %d seeds with checker mismatches\n",
			verdicts, doomed, mismatched)
	}
	if obsFlags.Audit {
		fmt.Printf("online auditor: %d violation(s) on %d seed(s), %d watchdog anomaly(ies)\n",
			auditViolations, auditSeeds, auditAnomalies)
	}
	if dumps := stack.Flight.Dumps(); len(dumps) > 0 {
		fmt.Printf("flight recorder: %d dumps under %s\n", len(dumps), obsFlags.FlightDir)
	}
	if err := stack.Finish(os.Stdout); err != nil {
		fatal(err)
	}

	if failed > 0 {
		fmt.Printf("FAIL: %d/%d seeds hit harness errors\n", failed, *seeds)
		os.Exit(1)
	}
	if mismatched > 0 {
		fmt.Printf("FAIL: explainer/checker mismatches on %d/%d seeds\n", mismatched, *seeds)
		os.Exit(1)
	}
	if *broken {
		if violating == 0 {
			fmt.Printf("FAIL: the %s negative control produced no IFA violation over %d seeds — the harness is blind\n", proto, *seeds)
			os.Exit(1)
		}
		if obsFlags.Audit && auditViolations == 0 {
			fmt.Printf("FAIL: the checker caught the broken %s protocol but the online auditor stayed silent\n", proto)
			os.Exit(1)
		}
		fmt.Printf("PASS: caught the broken %s protocol on %d/%d seeds\n", proto, violating, *seeds)
		return
	}
	if violating > 0 {
		fmt.Printf("FAIL: IFA violations on %d/%d seeds\n", violating, *seeds)
		os.Exit(1)
	}
	if auditViolations > 0 {
		fmt.Printf("FAIL: the online auditor raised %d violation(s) on %d/%d seeds\n", auditViolations, auditSeeds, *seeds)
		os.Exit(1)
	}
	fmt.Printf("PASS: zero IFA violations over %d seeds x %d episodes\n", *seeds, *episodes)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "smdb-chaos: %v\n", err)
	os.Exit(1)
}
