// Command smdb-chaos runs seeded fault-injection schedules over the
// concurrent workload: crashes at line migrations and update windows, torn
// log tails, crashes during recovery itself (including the coordinator),
// and transient disk/log I/O errors. After every recovery it asserts the
// IFA checker; any violation fails the run.
//
// Usage:
//
//	smdb-chaos [-seeds 50] [-seed 1] [-nodes 4] [-protocol stable-eager]
//	           [-episodes 3] [-txns 6] [-ops 6] [-sharing 0.7]
//	           [-pmigration 0.02] [-pupdate 0.01] [-ptorn 0.02]
//	           [-precovery 0.3] [-pcoordinator 0.5] [-pioerror 0.05]
//	           [-maxcrashes 2] [-v] [-broken] [-ablate-install-gate]
//	           [-record dir/] [-replay schedule.json]
//	           [-shrink schedule.json] [-shrinkout min.json]
//	           [-trace out.json] [-metrics] [-http 127.0.0.1:8321]
//	           [-flightdir dumps/] [-audit] [-window 1ms]
//
// -seeds N sweeps N consecutive seeds starting at -seed. -episodes scales
// how many crash/recover episodes each seed runs (soak jobs raise it to
// lengthen runs without touching workload specs). -broken runs the
// AblatedNoLBM negative control instead and *expects* the harness to catch
// at least one IFA violation across the sweep, exiting non-zero if the
// deliberately broken protocol slips through undetected.
//
// Record, replay, shrink:
//
//   - -record dir/ captures every nondeterministic decision of each seed's
//     run (worker interleaving, stop observations, fault draws) and writes
//     failing seeds' schedules as dir/seedN.json. Recording serializes the
//     workers through a scheduling floor, so a recorded run explores
//     serialized interleavings — the same family a replay executes.
//   - -replay file.json re-executes one recorded schedule deterministically
//     (protocol, node count, and workload shape come from the file; the
//     sweep flags are ignored). The run must reproduce the recorded
//     outcome: violations if the schedule recorded a failure (FailEpisode
//     set), a clean pass otherwise. Divergence — the engine no longer
//     follows the schedule, e.g. because the bug it pinned is fixed — is
//     reported and fails the run.
//   - -shrink file.json delta-debugs a failing schedule down to a minimal
//     one that still fails (dropping episodes, retiring workers early,
//     removing fault draws) and writes it to -shrinkout (default:
//     file.min.json).
//   - -ablate-install-gate disables the frozen-window install gate,
//     reintroducing the committed-value-lost race the gate fixed; use it to
//     capture or validate repro schedules for that bug (the committed
//     regression schedule in internal/workload/testdata was captured this
//     way).
//
// Exit codes: 0 — the sweep passed (or, under -broken, the negative control
// was caught; under -replay, the recorded outcome reproduced); 1 — harness
// errors, IFA violations on a real protocol, explainer/checker mismatches,
// an undetected -broken control, replay divergence or outcome mismatch, or
// a failed shrink.
//
// The shared observability flags (internal/obscli) additionally arm the
// dependency-graph explainer: every recovery's verdicts are cross-checked
// against the IFA checker, -flightdir captures a flight-recorder dump for
// every violating episode (including schedule.json when recording, so the
// dump is its own repro), and -http serves the live dependency graph of
// the seed currently running. -audit arms the online IFA auditor on top:
// per-transaction audit trails, continuous logging-before-migration checks
// (violations fail a real-protocol sweep and are *required* under -broken),
// and windowed time-series metrics with the anomaly watchdog, served at
// /audit/txn, /audit/violations, and /timeseries.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"smdb/internal/fault"
	"smdb/internal/machine"
	"smdb/internal/obscli"
	"smdb/internal/recovery"
	"smdb/internal/sched"
	"smdb/internal/workload"
)

var protocols = map[string]recovery.Protocol{
	"volatile-redoall":   recovery.VolatileRedoAll,
	"volatile-selective": recovery.VolatileSelectiveRedo,
	"stable-eager":       recovery.StableEager,
	"stable-triggered":   recovery.StableTriggered,
	"ablated":            recovery.AblatedNoLBM,
}

func main() {
	seeds := flag.Int("seeds", 50, "number of consecutive seeds to sweep")
	seed := flag.Int64("seed", 1, "first seed of the sweep")
	nodes := flag.Int("nodes", 4, "number of processor/memory pairs")
	protoName := flag.String("protocol", "stable-eager", "volatile-redoall | volatile-selective | stable-eager | stable-triggered | ablated")
	episodes := flag.Int("episodes", 3, "crash/recover episodes per seed")
	txns := flag.Int("txns", 6, "transactions per node per episode")
	ops := flag.Int("ops", 6, "operations per transaction")
	sharing := flag.Float64("sharing", 0.7, "fraction of operations on shared records")
	pMigration := flag.Float64("pmigration", 0.02, "P(crash at a database-line migration)")
	pUpdate := flag.Float64("pupdate", 0.01, "P(crash between log append and slot write)")
	pTorn := flag.Float64("ptorn", 0.02, "P(log force torn mid-write)")
	pRecovery := flag.Float64("precovery", 0.3, "P(crash at a recovery phase boundary)")
	pCoordinator := flag.Float64("pcoordinator", 0.5, "P(the in-recovery victim is the coordinator)")
	pIOError := flag.Float64("pioerror", 0.05, "P(transient I/O error per storage operation)")
	maxCrashes := flag.Int("maxcrashes", 2, "crash budget per episode")
	verbose := flag.Bool("v", false, "print every seed's result line, not just failures")
	broken := flag.Bool("broken", false, "run the AblatedNoLBM negative control and expect the harness to catch it")
	ablateGate := flag.Bool("ablate-install-gate", false, "disable the frozen-window install gate (reintroduces the lost-write race; for capturing repro schedules)")
	shrinkPath := flag.String("shrink", "", "delta-debug a recorded failing schedule down to a minimal one")
	shrinkOut := flag.String("shrinkout", "", "output path for -shrink (default: input with a .min.json suffix)")
	obsFlags := obscli.AddFlags(flag.CommandLine)
	flag.Parse()

	if err := obsFlags.SchedCheck(); err != nil {
		fatal(err)
	}
	if *shrinkPath != "" {
		if obsFlags.Record != "" || obsFlags.Replay != "" {
			fatal(fmt.Errorf("-shrink cannot be combined with -record/-replay"))
		}
		runShrink(*shrinkPath, *shrinkOut, *ablateGate)
		return
	}

	stack, err := obsFlags.Build()
	if err != nil {
		fatal(err)
	}

	if obsFlags.Replay != "" {
		runReplay(obsFlags, stack, *ablateGate)
		return
	}

	proto, ok := protocols[*protoName]
	if !ok {
		fatal(fmt.Errorf("unknown protocol %q", *protoName))
	}
	if *broken {
		proto = recovery.AblatedNoLBM
		// The no-LBM hazard needs a migration crash landing mid-workload;
		// unless the caller tuned it, raise the odds so the control is
		// demonstrable in a short sweep.
		tuned := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "pmigration" {
				tuned = true
			}
		})
		if !tuned {
			*pMigration = 0.35
		}
	}
	recWorkers := obsFlags.RecoverWorkers
	if obsFlags.Record != "" && recWorkers > 1 {
		fmt.Println("chaos: -record forces sequential recovery (-recoverworkers ignored)")
		recWorkers = 0
	}
	fmt.Printf("chaos: protocol=%s nodes=%d seeds=%d..%d episodes=%d (budget %d crashes/episode)\n",
		proto, *nodes, *seed, *seed+int64(*seeds)-1, *episodes, *maxCrashes)

	violating, failed := 0, 0
	verdicts, doomed, mismatched := 0, 0, 0
	auditViolations, auditAnomalies, auditSeeds := 0, 0, 0
	recorded := 0
	for i := 0; i < *seeds; i++ {
		s := *seed + int64(i)
		db, err := newChaosDB(proto, *nodes, recWorkers, obsFlags.GroupForce, *ablateGate)
		if err != nil {
			fatal(err)
		}
		stack.Attach(db)
		inj := fault.New(fault.Plan{
			Seed:              s,
			PCrashAtMigration: *pMigration,
			PCrashAtUpdate:    *pUpdate,
			PTornForce:        *pTorn,
			PCrashInRecovery:  *pRecovery,
			PCoordinatorCrash: *pCoordinator,
			PIOError:          *pIOError,
			MaxCrashes:        *maxCrashes,
		})
		spec := workload.Spec{
			TxnsPerNode:     *txns,
			OpsPerTxn:       *ops,
			ReadFraction:    0.4,
			SharingFraction: *sharing,
			Seed:            s,
		}
		var sess *sched.Session
		if obsFlags.Record != "" {
			sess = sched.NewRecorder()
		}
		res, err := workload.RunChaosSession(db, inj, spec, *episodes, sess)
		if err != nil {
			failed++
			fmt.Printf("seed %d: harness error: %v\n", s, err)
			saveSchedule(obsFlags, sess, s, &recorded)
			continue
		}
		if len(res.Violations) > 0 {
			violating++
			saveSchedule(obsFlags, sess, s, &recorded)
		}
		verdicts += res.Verdicts
		doomed += res.DoomedVerdicts
		auditViolations += res.AuditViolations
		auditAnomalies += res.AuditAnomalies
		if res.AuditViolations > 0 {
			auditSeeds++
		}
		if len(res.ExplainMismatches) > 0 {
			// The dependency explainer and the IFA checker disagreeing is a
			// harness bug regardless of the protocol under test.
			mismatched++
			fmt.Printf("seed %d: explainer/checker mismatch:\n", s)
			for _, m := range res.ExplainMismatches {
				fmt.Printf("  %s\n", m)
			}
		}
		if *verbose || (len(res.Violations) > 0 && !*broken) {
			fmt.Printf("%s\n", res)
			for _, v := range res.Violations {
				fmt.Printf("  %s\n", v)
			}
		}
	}
	if verdicts > 0 {
		fmt.Printf("explainer: %d verdicts, %d doomed survivors, %d seeds with checker mismatches\n",
			verdicts, doomed, mismatched)
	}
	if obsFlags.Audit {
		fmt.Printf("online auditor: %d violation(s) on %d seed(s), %d watchdog anomaly(ies)\n",
			auditViolations, auditSeeds, auditAnomalies)
	}
	if recorded > 0 {
		fmt.Printf("recorder: %d failing schedule(s) under %s\n", recorded, obsFlags.Record)
	}
	if dumps := stack.Flight.Dumps(); len(dumps) > 0 {
		fmt.Printf("flight recorder: %d dumps under %s\n", len(dumps), obsFlags.FlightDir)
	}
	if err := stack.Finish(os.Stdout); err != nil {
		fatal(err)
	}

	if failed > 0 {
		fmt.Printf("FAIL: %d/%d seeds hit harness errors\n", failed, *seeds)
		os.Exit(1)
	}
	if mismatched > 0 {
		fmt.Printf("FAIL: explainer/checker mismatches on %d/%d seeds\n", mismatched, *seeds)
		os.Exit(1)
	}
	if *broken {
		if violating == 0 {
			fmt.Printf("FAIL: the %s negative control produced no IFA violation over %d seeds — the harness is blind\n", proto, *seeds)
			os.Exit(1)
		}
		if obsFlags.Audit && auditViolations == 0 {
			fmt.Printf("FAIL: the checker caught the broken %s protocol but the online auditor stayed silent\n", proto)
			os.Exit(1)
		}
		fmt.Printf("PASS: caught the broken %s protocol on %d/%d seeds\n", proto, violating, *seeds)
		return
	}
	if violating > 0 {
		fmt.Printf("FAIL: IFA violations on %d/%d seeds\n", violating, *seeds)
		os.Exit(1)
	}
	if auditViolations > 0 {
		fmt.Printf("FAIL: the online auditor raised %d violation(s) on %d/%d seeds\n", auditViolations, auditSeeds, *seeds)
		os.Exit(1)
	}
	fmt.Printf("PASS: zero IFA violations over %d seeds x %d episodes\n", *seeds, *episodes)
}

// newChaosDB builds the standard chaos database configuration.
func newChaosDB(proto recovery.Protocol, nodes, workers int, groupForce, ablateGate bool) (*recovery.DB, error) {
	db, err := recovery.New(recovery.Config{
		Machine:           machine.Config{Nodes: nodes, Lines: 4096},
		Protocol:          proto,
		LinesPerPage:      4,
		RecsPerLine:       4,
		Pages:             16,
		LockTableLines:    128,
		RecoveryWorkers:   workers,
		GroupCommitForces: groupForce,
	})
	if err != nil {
		return nil, err
	}
	if ablateGate {
		db.M.SetInstallGate(nil)
	}
	return db, nil
}

// saveSchedule writes a failing seed's recorded schedule, if recording.
func saveSchedule(obsFlags *obscli.Flags, sess *sched.Session, s int64, recorded *int) {
	if sess == nil {
		return
	}
	path, err := obsFlags.SaveSchedule(sess, fmt.Sprintf("seed%d", s))
	if err != nil {
		fmt.Printf("seed %d: writing schedule: %v\n", s, err)
		return
	}
	*recorded++
	fmt.Printf("seed %d: schedule recorded to %s\n", s, path)
}

// scheduleEnv reconstructs the replay environment a schedule file describes:
// protocol, node count, workload spec, and injector plan.
func scheduleEnv(sch *sched.Schedule) (recovery.Protocol, workload.Spec, fault.Plan, error) {
	proto, ok := recovery.ParseProtocol(sch.Protocol)
	if !ok {
		return 0, workload.Spec{}, fault.Plan{}, fmt.Errorf("schedule names unknown protocol %q", sch.Protocol)
	}
	rs := sch.Spec
	if rs == nil {
		return 0, workload.Spec{}, fault.Plan{}, fmt.Errorf("schedule carries no workload spec (recorded by an older build?)")
	}
	spec := workload.Spec{
		TxnsPerNode:     rs.TxnsPerNode,
		OpsPerTxn:       rs.OpsPerTxn,
		ReadFraction:    rs.ReadFraction,
		SharingFraction: rs.SharingFraction,
		HotSpot:         rs.HotSpot,
		HotProb:         rs.HotProb,
		AbortFraction:   rs.AbortFraction,
		HeapPages:       rs.HeapPages,
		Seed:            sch.Seed,
	}
	// Probabilities are irrelevant on replay (draws come from the schedule);
	// the guard knobs the injector consults outside its draws must match.
	plan := fault.Plan{
		Seed:         sch.FaultSeed,
		MaxCrashes:   rs.MaxCrashes,
		MinAlive:     rs.MinAlive,
		IOErrorBurst: rs.IOErrorBurst,
		PIOError:     rs.PIOError,
	}
	return proto, spec, plan, nil
}

// runReplay re-executes one recorded schedule and checks the outcome
// against what the schedule recorded.
func runReplay(obsFlags *obscli.Flags, stack *obscli.Stack, ablateGate bool) {
	sch, err := obsFlags.LoadSchedule()
	if err != nil {
		fatal(err)
	}
	proto, spec, plan, err := scheduleEnv(sch)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replay: %s protocol=%s nodes=%d episodes=%d seed=%d faultSeed=%d",
		obsFlags.Replay, proto, sch.Nodes, len(sch.Episodes), sch.Seed, sch.FaultSeed)
	if sch.FailEpisode >= 0 {
		fmt.Printf(" (recorded failure in episode %d, seed %d)", sch.FailEpisode, sch.FailSeed)
	}
	fmt.Println()

	// The replay DB must match the recorded configuration — a run recorded
	// with group forces on coalesces commits at recorded points, and a
	// plain-force replay would diverge.
	db, err := newChaosDB(proto, sch.Nodes, 0, sch.Spec.GroupForce, ablateGate)
	if err != nil {
		fatal(err)
	}
	stack.Attach(db)
	res, err := workload.RunChaosSession(db, fault.New(plan), spec, 0, sched.NewReplayer(sch))
	if finErr := stack.Finish(os.Stdout); finErr != nil {
		fatal(finErr)
	}
	if err != nil {
		fmt.Printf("FAIL: %v\n", err)
		if strings.Contains(err.Error(), "diverged") {
			fmt.Println("      (divergence means the engine no longer follows this schedule —")
			fmt.Println("       e.g. the bug it pinned is fixed, or the build/config changed)")
		}
		os.Exit(1)
	}
	fmt.Printf("%s\n", res)
	for _, v := range res.Violations {
		fmt.Printf("  %s\n", v)
	}
	expectFail := sch.FailEpisode >= 0
	gotFail := len(res.Violations) > 0
	switch {
	case expectFail && !gotFail:
		fmt.Println("FAIL: the schedule recorded IFA violations but the replay stayed clean")
		os.Exit(1)
	case !expectFail && gotFail:
		fmt.Println("FAIL: the schedule recorded a clean run but the replay violated IFA")
		os.Exit(1)
	case expectFail:
		fmt.Println("PASS: reproduced the recorded violation deterministically")
	default:
		fmt.Println("PASS: reproduced the recorded clean run")
	}
}

// runShrink minimizes a failing schedule.
func runShrink(path, outPath string, ablateGate bool) {
	sch, err := sched.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	proto, spec, plan, err := scheduleEnv(sch)
	if err != nil {
		fatal(err)
	}
	if outPath == "" {
		outPath = strings.TrimSuffix(path, ".json") + ".min.json"
	}
	env := workload.ShrinkEnv{
		NewDB: func() (*recovery.DB, error) {
			return newChaosDB(proto, sch.Nodes, 0, sch.Spec.GroupForce, ablateGate)
		},
		NewInjector: func() *fault.Injector { return fault.New(plan) },
		Spec:        spec,
		// Shrink candidates diverge routinely; a short watchdog keeps the
		// delta-debugging loop fast.
		Watchdog: 3 * time.Second,
		Log: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	min, rep, err := workload.Shrink(env, sch)
	if err != nil {
		fmt.Printf("FAIL: %v\n", err)
		fmt.Println("      (-shrink needs a schedule whose replay still violates IFA;")
		fmt.Println("       capture one with -record, with -ablate-install-gate if minimizing the fixed lost-write race)")
		os.Exit(1)
	}
	if err := min.WriteFile(outPath); err != nil {
		fatal(err)
	}
	fmt.Printf("%s\n", rep)
	fmt.Printf("PASS: minimized schedule written to %s\n", outPath)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "smdb-chaos: %v\n", err)
	os.Exit(1)
}
