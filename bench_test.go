// Benchmarks regenerating the paper's evaluation (DESIGN.md experiment
// index). Each benchmark runs one experiment per iteration, reports the
// headline quantity as custom metrics (simulated time — the calibrated
// 1995-hardware clock — alongside Go's wall-clock ns/op), and prints the
// experiment's table once. EXPERIMENTS.md records paper-vs-measured.
package smdb_test

import (
	"strings"
	"sync"
	"testing"

	"smdb/internal/harness"
	"smdb/internal/recovery"
)

// metricName makes a label safe for testing.B.ReportMetric units.
func metricName(s string) string {
	for _, cut := range []string{"(", ")", ":"} {
		s = strings.ReplaceAll(s, cut, "")
	}
	return strings.ReplaceAll(s, " ", "-")
}

// logOnce prints each experiment's table a single time per bench run.
var logOnce sync.Map

func printTable(b *testing.B, name, table string) {
	if _, loaded := logOnce.LoadOrStore(name, true); !loaded {
		b.Logf("\n%s", table)
	}
}

// BenchmarkTable1Overheads regenerates Table 1 (experiment E1): the
// incremental overhead matrix of the IFA protocols on a mixed
// record/index/lock workload.
func BenchmarkTable1Overheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunTable1(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable(b, "table1", res.Table())
			base := res.Rows[0].SimTime
			for _, row := range res.Rows {
				b.ReportMetric(float64(row.SimTime)/float64(base), "slowdown/"+row.Protocol.String())
			}
		}
	}
}

// BenchmarkLineLockLatency regenerates the section 5.1 measurements
// (experiment E2): line-lock acquisition latency under 1..32-way
// contention.
func BenchmarkLineLockLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunLineLock(nil, 200, 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable(b, "linelock", res.Table())
			b.ReportMetric(float64(res.Points[0].MeanNS), "sim-ns/acquire-uncontended")
			b.ReportMetric(float64(res.Points[len(res.Points)-1].MeanNS), "sim-ns/acquire-32way")
		}
	}
}

// BenchmarkUnnecessaryAborts regenerates experiment E3: the fraction of
// active transactions aborted by a one-node crash, per protocol and sharing
// level — the paper's headline claim.
func BenchmarkUnnecessaryAborts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunAborts(8, []int{1, 4, 8}, []float64{0, 0.5, 1}, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable(b, "aborts", res.Table())
			var baseUnnecessary, ifaUnnecessary int
			for _, p := range res.Points {
				if p.Protocol == recovery.BaselineFA {
					baseUnnecessary += p.Unnecessary
				} else {
					ifaUnnecessary += p.Unnecessary
				}
			}
			b.ReportMetric(float64(baseUnnecessary), "unnecessary-aborts/baseline")
			b.ReportMetric(float64(ifaUnnecessary), "unnecessary-aborts/ifa")
		}
	}
}

// BenchmarkRuntimeOverhead regenerates experiment E4: failure-free per-
// operation cost of each protocol relative to the baseline.
func BenchmarkRuntimeOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunRuntime(8, 0.5, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable(b, "runtime", res.Table())
			for _, p := range res.Points {
				name := p.Protocol.String()
				if p.NVRAM {
					name += "+nvram"
				}
				b.ReportMetric(p.Slowdown, "slowdown/"+name)
			}
		}
	}
}

// BenchmarkRestartRecovery regenerates experiment E5: restart cost of Redo
// All vs Selective Redo as the post-checkpoint backlog grows.
func BenchmarkRestartRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunRestart([]int{64, 256}, int64(i+1), nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable(b, "restart", res.Table())
			for _, p := range res.Points {
				if p.Backlog == 256 {
					b.ReportMetric(float64(p.RedoApplied), "redo@256/"+p.Protocol.String())
				}
			}
		}
	}
}

// BenchmarkParallelRecovery regenerates experiment E18: host wall-clock
// makespan of restart recovery as the worker fan-out grows on a
// multi-survivor config. Recovery work is worker-invariant (the equivalence
// gate in internal/recovery); the reported speedup/N metrics are host
// wall-clock and therefore bounded by GOMAXPROCS — the ≥2x-at-4-workers
// expectation applies on hosts with GOMAXPROCS >= 4.
func BenchmarkParallelRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunParRecovery(int64(i+1), []int{0, 1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable(b, "parrecovery", res.Table())
			for _, p := range res.Points {
				if p.Protocol != recovery.VolatileSelectiveRedo || p.Workers == 0 {
					continue
				}
				b.ReportMetric(p.Speedup, metricName("speedup/"+string('0'+byte(p.Workers))+"-workers"))
			}
		}
	}
}

// BenchmarkRecoveryProfile regenerates experiment E20: the profiled E18
// recovery, with wall time attributed to worker busy / stripe lock-wait /
// condvar-wait / fan-out idle / merge buckets. The coverage metrics are the
// attributed fraction of host wall time per worker count (the acceptance bar
// is 0.9); like E18's speedups they are host wall-clock quantities, so
// bucket shapes at 4/8 workers only reflect real parallelism when
// GOMAXPROCS grants it.
func BenchmarkRecoveryProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunRecoveryProfile(int64(i+1), []int{0, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable(b, "recoveryprofile", res.Report())
			for _, p := range res.Points {
				label := "seq"
				if p.Workers > 0 {
					label = string('0'+byte(p.Workers)) + "-workers"
				}
				b.ReportMetric(p.Coverage, metricName("coverage/"+label))
				if p.Wall > 0 {
					b.ReportMetric(float64(p.LockWaitNS+p.CondWaitNS)/float64(p.Wall.Nanoseconds()),
						metricName("wait-share/"+label))
				}
			}
		}
	}
}

// BenchmarkLogForceFrequency regenerates experiment E6: physical log-force
// frequency of eager vs triggered Stable LBM vs Volatile LBM as inter-node
// sharing grows.
func BenchmarkLogForceFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunForces([]float64{0, 0.5, 1}, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable(b, "forces", res.Table())
			for _, p := range res.Points {
				if p.SharingFraction == 1 {
					b.ReportMetric(p.ForcesPerKUpdate, "forces-per-1k@full-sharing/"+p.Protocol.String())
				}
			}
		}
	}
}

// BenchmarkWriteBroadcast regenerates experiment E7: under write-broadcast
// coherency, ww sharing stops migrating lines and restart needs no redo.
func BenchmarkWriteBroadcast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunBroadcast(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable(b, "broadcast", res.Table())
			for _, p := range res.Points {
				b.ReportMetric(float64(p.Migrations), "migrations/"+p.Coherency.String())
				b.ReportMetric(float64(p.RedoApplied), "redo/"+p.Coherency.String())
			}
		}
	}
}

// BenchmarkLockManagers regenerates experiment E8: SM locking vs the
// message-passing shared-disk baseline.
func BenchmarkLockManagers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunLocks([]int{8, 32}, 100, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable(b, "locks", res.Table())
			for _, p := range res.Points {
				if p.Nodes == 32 {
					b.ReportMetric(float64(p.MeanAcquireNS), "sim-ns/acquire@32/"+metricName(p.Manager))
				}
			}
		}
	}
}

// BenchmarkBTreeRecovery regenerates experiment E9: index crash recovery
// with early-committed splits.
func BenchmarkBTreeRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunBTreeRecovery(recovery.VolatileSelectiveRedo, 80, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if res.TreeViolations != 0 || res.IFAViolations != 0 {
			b.Fatalf("violations: %+v", res)
		}
		if i == 0 {
			printTable(b, "btree", res.Table())
			b.ReportMetric(float64(res.RecoverySimTime)/1e6, "sim-ms/recovery")
		}
	}
}

// BenchmarkLockSpaceRecovery regenerates experiment E10: LCB loss, release
// of crashed transactions' locks, and rebuild from read-lock logs.
func BenchmarkLockSpaceRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, chained := range []bool{false, true} {
			res, err := harness.RunLockRecovery(recovery.VolatileSelectiveRedo, 8, int64(i+1), chained, nil)
			if err != nil {
				b.Fatal(err)
			}
			if res.Violations != 0 {
				b.Fatalf("IFA violations (chained=%v): %d", chained, res.Violations)
			}
			if i == 0 {
				name := "lockrecovery-oneline"
				if chained {
					name = "lockrecovery-chained"
				}
				printTable(b, name, res.Table())
				b.ReportMetric(float64(res.Replayed), "locks-replayed/"+name)
			}
		}
	}
}

// BenchmarkAblationNoLBM regenerates experiment E11: the figure 2 crash
// scenarios with logging-before-migration disabled, demonstrating the
// hazards the protocols exist to prevent (the IFA checker must flag both).
func BenchmarkAblationNoLBM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunAblation()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable(b, "ablation", res.Table())
			for _, p := range res.Points {
				b.ReportMetric(float64(p.Violations),
					metricName("violations/"+p.Protocol.String()+"/case"+string('0'+byte(p.CrashCase))))
			}
		}
	}
}

// BenchmarkParallelTxn regenerates experiment E12 (paper section 9): a
// parallel transaction loses one participant node; every branch aborts
// while independent transactions survive.
func BenchmarkParallelTxn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunParallel(recovery.VolatileSelectiveRedo, 4)
		if err != nil {
			b.Fatal(err)
		}
		if res.AbortedBranches != res.Participants || !res.IndependentSurvived || res.Violations != 0 {
			b.Fatalf("shape broken: %+v", res)
		}
		if i == 0 {
			printTable(b, "parallel", res.Table())
			b.ReportMetric(float64(res.AbortedBranches), "branches-aborted")
		}
	}
}

// BenchmarkScaling regenerates experiment E13: one-node-crash damage vs
// machine size, extrapolated to yearly lost work — the introduction's
// availability argument for IFA.
func BenchmarkScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunScaling([]int{8, 32}, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable(b, "scaling", res.Table())
			for _, p := range res.Points {
				if p.Nodes == 32 {
					b.ReportMetric(p.LostWritesPerYear, "lost-writes-per-year@32/"+p.Protocol.String())
				}
			}
		}
	}
}

// BenchmarkHotspot regenerates experiment E14: access skew moves contention
// from the coherence fabric into the lock manager; the triggered policy's
// force rate tracks migrations, not updates.
func BenchmarkHotspot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunHotspot([]float64{0, 0.9}, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable(b, "hotspot", res.Table())
			for _, p := range res.Points {
				if p.HotProb == 0.9 {
					b.ReportMetric(p.MigrationsPerUpdate, "migrations-per-update@hot/"+p.Protocol.String())
				}
			}
		}
	}
}

// BenchmarkOSStructures regenerates experiment E15 (paper section 9): the
// recovery techniques applied to operating-system structures — a
// shared-memory semaphore table and disk-usage bitmap survive a node crash
// with survivors' holdings intact and the victim's resources reclaimed.
func BenchmarkOSStructures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunOSStruct()
		if err != nil {
			b.Fatal(err)
		}
		if res.Violations != 0 {
			b.Fatalf("integrity violations: %+v", res)
		}
		if i == 0 {
			printTable(b, "osstruct", res.Table())
			b.ReportMetric(float64(res.BlocksReclaimed), "victim-blocks-reclaimed")
		}
	}
}
