package smdb_test

import (
	"errors"
	"testing"

	"smdb"
)

func TestOpenDefaults(t *testing.T) {
	db, err := smdb.Open(smdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(db.AliveNodes()); got != 4 {
		t.Errorf("default nodes = %d, want 4", got)
	}
	if db.Index != nil {
		t.Error("index present without IndexPages")
	}
}

func TestEndToEndCrashRecovery(t *testing.T) {
	db, err := smdb.Open(smdb.Options{Nodes: 2, Protocol: smdb.VolatileSelectiveRedo})
	if err != nil {
		t.Fatal(err)
	}
	rid := smdb.NewRID(0, 0)
	setup, err := db.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Insert(rid, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	victim, err := db.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Write(rid, []byte("uncommitted")); err != nil {
		t.Fatal(err)
	}
	rep := db.Crash(1)
	if len(rep.Crashed) != 1 {
		t.Fatalf("crash report: %+v", rep)
	}
	rr, err := db.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Aborted) != 1 || rr.Aborted[0] != victim.ID() {
		t.Errorf("aborted = %v, want the victim", rr.Aborted)
	}
	if v := db.CheckIFA(); len(v) != 0 {
		t.Errorf("IFA violations: %v", v)
	}
	reader, err := db.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reader.Read(rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:9]) != "committed" {
		t.Errorf("value = %q, want committed prefix", got[:9])
	}
	if err := db.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	back, err := db.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Write(rid, []byte("again")); !errors.Is(err, smdb.ErrBlocked) && err != nil {
		t.Fatalf("restarted node write: %v", err)
	}
}

func TestOpenWithIndex(t *testing.T) {
	db, err := smdb.Open(smdb.Options{Nodes: 2, Pages: 64, IndexPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	if db.Index == nil {
		t.Fatal("no index")
	}
	tx, err := db.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Index.Insert(tx, 42, 4200); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ty, _ := db.Begin(1)
	v, err := db.Index.Lookup(ty, 42)
	if err != nil || v != 4200 {
		t.Errorf("lookup = %d, %v", v, err)
	}
	if s := db.Stats(); s.Machine.Reads == 0 || s.Locks.Acquires == 0 {
		t.Errorf("stats empty: %+v", s)
	}
}

func TestOpenChainedAndParallel(t *testing.T) {
	db, err := smdb.Open(smdb.Options{Nodes: 3, ChainedLCBs: true})
	if err != nil {
		t.Fatal(err)
	}
	rid := smdb.NewRID(0, 0)
	setup, _ := db.Begin(0)
	if err := setup.Insert(rid, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	p, err := db.BeginParallel(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.On(1).Write(rid, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	// Crash a participant after commit: the committed value persists.
	db.Crash(1)
	if _, err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	check, _ := db.Begin(0)
	got, err := check.Read(rid)
	if err != nil || got[0] != 2 {
		t.Errorf("parallel commit lost: %v, %v", got, err)
	}
	if v := db.CheckIFA(); len(v) != 0 {
		t.Errorf("IFA: %v", v)
	}
}

func TestOpenAblated(t *testing.T) {
	db, err := smdb.Open(smdb.Options{Nodes: 2, Protocol: smdb.AblatedNoLBM})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(db.AliveNodes()); got != 2 {
		t.Fatalf("nodes = %d", got)
	}
}
